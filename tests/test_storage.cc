// Unit tests for src/storage: ColumnVector, Schema, Table, Catalog.
#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/table.h"

namespace recycledb {
namespace {

TEST(ColumnTest, AppendAndGet) {
  ColumnVector col(TypeId::kInt64);
  col.Append(Datum(int64_t{7}));
  col.Append(Datum(int64_t{9}));
  EXPECT_EQ(col.size(), 2);
  EXPECT_EQ(std::get<int64_t>(col.GetDatum(0)), 7);
  EXPECT_EQ(std::get<int64_t>(col.GetDatum(1)), 9);
}

TEST(ColumnTest, DateSharesInt32Storage) {
  ColumnVector col(TypeId::kDate);
  col.Append(Datum(MakeDate(1998, 12, 1)));
  EXPECT_EQ(col.Raw<int32_t>()[0], MakeDate(1998, 12, 1));
}

TEST(ColumnTest, AppendSelectedGathers) {
  ColumnVector src(TypeId::kInt32);
  for (int i = 0; i < 10; ++i) src.Append(Datum(int32_t{i}));
  ColumnVector dst(TypeId::kInt32);
  dst.AppendSelected(src, {1, 3, 5});
  ASSERT_EQ(dst.size(), 3);
  EXPECT_EQ(dst.Raw<int32_t>()[0], 1);
  EXPECT_EQ(dst.Raw<int32_t>()[1], 3);
  EXPECT_EQ(dst.Raw<int32_t>()[2], 5);
}

TEST(ColumnTest, AppendRangeStrings) {
  ColumnVector src(TypeId::kString);
  src.Append(Datum(std::string("a")));
  src.Append(Datum(std::string("b")));
  src.Append(Datum(std::string("c")));
  ColumnVector dst(TypeId::kString);
  dst.AppendRange(src, 1, 2);
  ASSERT_EQ(dst.size(), 2);
  EXPECT_EQ(dst.Raw<std::string>()[0], "b");
  EXPECT_EQ(dst.Raw<std::string>()[1], "c");
}

TEST(ColumnTest, HashRowEqualValuesEqualHash) {
  ColumnVector a(TypeId::kInt64), b(TypeId::kInt64);
  a.Append(Datum(int64_t{42}));
  b.Append(Datum(int64_t{42}));
  EXPECT_EQ(a.HashRow(0, 17), b.HashRow(0, 17));
  EXPECT_TRUE(a.RowEquals(0, b, 0));
}

TEST(ColumnTest, ByteSizeGrowsWithData) {
  ColumnVector col(TypeId::kInt64);
  int64_t empty = col.ByteSize();
  for (int i = 0; i < 1000; ++i) col.Append(Datum(int64_t{i}));
  EXPECT_GE(col.ByteSize(), empty + 8000);
}

TEST(SchemaTest, IndexOf) {
  Schema s({{"a", TypeId::kInt32}, {"b", TypeId::kString}});
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("b"), 1);
  EXPECT_EQ(s.IndexOf("c"), -1);
  EXPECT_TRUE(s.Has("b"));
  EXPECT_EQ(s.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TableTest, AppendRowsAndBatch) {
  Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  t->AppendRow({int32_t{1}, 2.5});
  t->AppendRow({int32_t{2}, 3.5});
  EXPECT_EQ(t->num_rows(), 2);
  EXPECT_EQ(std::get<double>(t->Get(1, 1)), 3.5);

  Batch b;
  b.columns = {MakeColumn(TypeId::kInt32), MakeColumn(TypeId::kDouble)};
  b.columns[0]->Append(Datum(int32_t{3}));
  b.columns[1]->Append(Datum(4.5));
  b.num_rows = 1;
  t->AppendBatch(b);
  EXPECT_EQ(t->num_rows(), 3);
  EXPECT_EQ(std::get<int32_t>(t->Get(2, 0)), 3);
}

TEST(TableTest, RenameColumnsSharesData) {
  Schema s({{"a", TypeId::kInt32}});
  TablePtr t = MakeTable(s);
  t->AppendRow({int32_t{5}});
  TablePtr renamed = t->RenameColumns({"x"});
  EXPECT_EQ(renamed->schema().field(0).name, "x");
  EXPECT_EQ(renamed->num_rows(), 1);
  EXPECT_EQ(renamed->column(0).get(), t->column(0).get());  // zero copy
}

TEST(TableTest, SelectColumnsReorders) {
  Schema s({{"a", TypeId::kInt32}, {"b", TypeId::kString}});
  TablePtr t = MakeTable(s);
  t->AppendRow({int32_t{1}, std::string("x")});
  TablePtr sel = t->SelectColumns({"b", "a"});
  EXPECT_EQ(sel->schema().field(0).name, "b");
  EXPECT_EQ(std::get<int32_t>(sel->Get(0, 1)), 1);
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog cat;
  Schema s({{"a", TypeId::kInt32}});
  TablePtr t = MakeTable(s);
  t->AppendRow({int32_t{1}});
  EXPECT_TRUE(cat.RegisterTable("t", t).ok());
  EXPECT_FALSE(cat.RegisterTable("t", t).ok());  // duplicate
  EXPECT_NE(cat.GetTable("t"), nullptr);
  EXPECT_EQ(cat.GetTable("missing"), nullptr);
  EXPECT_TRUE(cat.HasTable("t"));
}

TEST(CatalogTest, ColumnStatsDistinctAndMinMax) {
  Catalog cat;
  Schema s({{"k", TypeId::kInt32}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 100; ++i) t->AppendRow({int32_t{i % 10}});
  ASSERT_TRUE(cat.RegisterTable("t", t).ok());
  const ColumnStats* stats = cat.GetColumnStats("t", "k");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->distinct_count, 10);
  EXPECT_EQ(std::get<int32_t>(stats->min_value), 0);
  EXPECT_EQ(std::get<int32_t>(stats->max_value), 9);
}

TEST(CatalogTest, ReplaceTableRecomputesStats) {
  Catalog cat;
  Schema s({{"k", TypeId::kInt32}});
  TablePtr t1 = MakeTable(s);
  t1->AppendRow({int32_t{1}});
  ASSERT_TRUE(cat.RegisterTable("t", t1).ok());
  TablePtr t2 = MakeTable(s);
  t2->AppendRow({int32_t{1}});
  t2->AppendRow({int32_t{2}});
  ASSERT_TRUE(cat.ReplaceTable("t", t2).ok());
  EXPECT_EQ(cat.GetColumnStats("t", "k")->distinct_count, 2);
  EXPECT_FALSE(cat.ReplaceTable("nope", t2).ok());
}

}  // namespace
}  // namespace recycledb
