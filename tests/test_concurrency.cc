// Concurrent-recycler stress tests: N threads executing overlapping plans
// (reuse + stall + eviction under contention), invalidation and flush
// racing in-flight scans, and the stall-timeout path. These are the tests
// the CI ThreadSanitizer job runs; they extend the shared-ownership
// lifetime guarantees of tests/test_views.cc to genuinely concurrent
// streams.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "recycler/recycler.h"
#include "test_util.h"
#include "workload/driver.h"

namespace recycledb {
namespace {

/// Reference configuration with recycling off (for expected results).
RecyclerConfig OffConfig() {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  return cfg;
}

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 20000; ++i) {
      t->AppendRow({int32_t{i % 100}, static_cast<double>(i % 977)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  /// Aggregate over a selection; distinct thresholds give overlapping
  /// plans that share the scan + selection prefix in the graph.
  PlanPtr AggPlan(int64_t threshold) {
    return PlanNode::Aggregate(
        PlanNode::Select(
            PlanNode::Scan("t", {"k", "v"}),
            Expr::Gt(Expr::Column("k"), Expr::Literal(threshold))),
        {"k"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  }

  /// Verifies the graph settles into a consistent quiescent state: no
  /// node in flight, and cached bookkeeping consistent with the cache.
  void ExpectQuiescentConsistency(Recycler& rec) {
    std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
    int64_t cached_nodes = 0;
    for (const auto& n : rec.graph().nodes()) {
      EXPECT_NE(n->mat_state.load(), MatState::kInFlight) << n->param_fp;
      if (n->mat_state.load() == MatState::kCached) ++cached_nodes;
    }
    EXPECT_EQ(cached_nodes, rec.cache().num_entries());
    if (rec.config().cache_bytes >= 0) {
      EXPECT_LE(rec.cache().used_bytes(), rec.config().cache_bytes);
    }
  }

  Catalog catalog_;
};

TEST_F(ConcurrencyTest, MultiStreamOverlappingPlansUnderContention) {
  // 8 threads x 6 rounds over 4 overlapping plans through one recycler:
  // exercises concurrent matching (shared lock), insertion races (OCC
  // revalidation), store-claim CAS races, reuse, and stalls — the
  // ThreadSanitizer workhorse for the Prepare/OnComplete path.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);

  std::vector<std::multiset<std::string>> expected;
  for (int p = 0; p < 4; ++p) {
    Recycler ref(&catalog_, OffConfig());
    expected.push_back(
        recycledb::testing::RowMultiset(*ref.Execute(AggPlan(p)).table));
  }

  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 6; ++round) {
        int p = (i + round) % 4;
        ExecResult r = rec.Execute(AggPlan(p));
        if (recycledb::testing::RowMultiset(*r.table) != expected[p]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(rec.counters().queries.load(), kThreads * 6);
  EXPECT_GT(rec.counters().reuses.load(), 0);
  ExpectQuiescentConsistency(rec);
}

TEST_F(ConcurrencyTest, TinyCacheEvictionChurnStaysConsistent) {
  // A cache far smaller than the working set forces continuous
  // admit/evict churn while other streams reuse and stall: races between
  // OfferResult, eviction, and snapshotting readers all funnel through
  // the cache mutex + mat shards.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.cache_bytes = 8 << 10;  // a couple of aggregate results at most
  Recycler rec(&catalog_, cfg);

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 8; ++round) {
        ExecResult r = rec.Execute(AggPlan((i * 3 + round) % 6));
        if (r.table == nullptr || r.table->num_rows() == 0) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  ExpectQuiescentConsistency(rec);
}

TEST_F(ConcurrencyTest, InvalidateAndFlushRaceInFlightScans) {
  // Extends test_views.cc's lifetime rules across threads: queries that
  // snapshotted a cached result keep valid (zero-copy) data while
  // InvalidateTable / FlushCache concurrently drop the graph's reference.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);

  Recycler ref(&catalog_, OffConfig());
  auto expected =
      recycledb::testing::RowMultiset(*ref.Execute(AggPlan(10)).table);

  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        ExecResult r = rec.Execute(AggPlan(10));
        if (recycledb::testing::RowMultiset(*r.table) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  std::thread sweeper([&] {
    int i = 0;
    while (!stop.load()) {
      if (++i % 2 == 0) {
        rec.InvalidateTable("t");
      } else {
        rec.FlushCache();
      }
      std::this_thread::yield();
    }
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  sweeper.join();
  EXPECT_EQ(mismatches.load(), 0);
  ExpectQuiescentConsistency(rec);
}

TEST_F(ConcurrencyTest, StallTimeoutFallsBackToExecution) {
  // Deterministic stall coverage: pin a node in kInFlight with no
  // materializer behind it; the next query must stall, hit the timeout,
  // and fall back to executing the subtree itself with a correct result.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.stall_timeout_ms = 50;
  Recycler rec(&catalog_, cfg);

  ExecResult first = rec.Execute(AggPlan(10));
  auto expected = recycledb::testing::RowMultiset(*first.table);

  RGNode* agg = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
    for (const auto& n : rec.graph().nodes()) {
      if (n->type == OpType::kAggregate) agg = n.get();
    }
  }
  ASSERT_NE(agg, nullptr);
  // Simulate an abandoned materializer (e.g. a crashed stream).
  rec.FlushCache();
  agg->mat_state.store(MatState::kInFlight);

  Stopwatch sw;
  QueryTrace trace;
  ExecResult r = rec.Execute(AggPlan(10), &trace);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), expected);
  EXPECT_GE(trace.num_stalls, 1);
  EXPECT_GE(trace.stall_ms, 45.0);  // waited out the timeout
  EXPECT_LT(sw.ElapsedMs(), 10000.0);
  agg->mat_state.store(MatState::kNone);
}

TEST_F(ConcurrencyTest, ColdStartHerdReusesOrStallsAndAgrees) {
  // A herd of threads issuing the identical expensive plan from cold:
  // one claims the speculative store, the rest either stall on the
  // in-flight materialization or reuse the finished result. Repeat with
  // fresh recyclers so the interleaving varies.
  Recycler ref(&catalog_, OffConfig());
  auto expected =
      recycledb::testing::RowMultiset(*ref.Execute(AggPlan(7)).table);

  int64_t reuse_or_stall = 0;
  for (int round = 0; round < 4; ++round) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    Recycler rec(&catalog_, cfg);
    constexpr int kThreads = 6;
    std::atomic<int> mismatches{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        ExecResult r = rec.Execute(AggPlan(7));
        if (recycledb::testing::RowMultiset(*r.table) != expected) {
          mismatches.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(mismatches.load(), 0);
    reuse_or_stall +=
        rec.counters().reuses.load() + rec.counters().stalls.load();
    ExpectQuiescentConsistency(rec);
  }
  // Across 4 rounds x 6 threads, sharing must have happened somewhere.
  EXPECT_GT(reuse_or_stall, 0);
}

TEST_F(ConcurrencyTest, WorkloadDriverBoundsConcurrentExecution) {
  // End-to-end through the WorkloadDriver: more stream tasks than
  // execution slots, so the admission gate (not the thread count) is the
  // binding constraint. Also validates the per-stream aggregates.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);

  constexpr int kStreams = 6;
  std::vector<workload::StreamSpec> streams;
  for (int s = 0; s < kStreams; ++s) {
    workload::StreamSpec spec;
    for (int q = 0; q < 4; ++q) {
      spec.labels.push_back("agg" + std::to_string(q % 3));
      spec.plans.push_back(AggPlan(q % 3));
    }
    streams.push_back(std::move(spec));
  }

  workload::DriverOptions options;
  options.max_concurrent = 2;
  options.threads = kStreams;  // oversubscribed: the gate must bound
  workload::WorkloadDriver driver(&rec, options);
  workload::RunReport report = driver.Run(std::move(streams));

  EXPECT_EQ(report.TotalQueries(), kStreams * 4);
  ASSERT_EQ(report.stream_stats.size(), static_cast<size_t>(kStreams));
  for (const auto& ss : report.stream_stats) {
    EXPECT_EQ(ss.queries, 4);
    EXPECT_GT(ss.span_ms, 0.0);
  }
  EXPECT_GT(report.QueriesPerSec(), 0.0);
  EXPECT_GT(report.TotalReuses(), 0);
  EXPECT_GE(report.LatencyPercentileMs(99),
            report.LatencyPercentileMs(50));
  ExpectQuiescentConsistency(rec);
}

}  // namespace
}  // namespace recycledb
