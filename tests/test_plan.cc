// Unit tests for src/plan: binding, fingerprints, hash keys, signatures,
// new-name detection, cloning.
#include <gtest/gtest.h>

#include "plan/plan.h"

namespace recycledb {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32},
              {"v", TypeId::kDouble},
              {"s", TypeId::kString},
              {"d", TypeId::kDate}});
    TablePtr t = MakeTable(s);
    t->AppendRow({int32_t{1}, 1.0, std::string("a"), MakeDate(1995, 1, 1)});
    t->AppendRow({int32_t{2}, 2.0, std::string("b"), MakeDate(1996, 1, 1)});
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
    Schema s2({{"k2", TypeId::kInt32}, {"w", TypeId::kInt64}});
    TablePtr t2 = MakeTable(s2);
    t2->AppendRow({int32_t{1}, int64_t{10}});
    ASSERT_TRUE(catalog_.RegisterTable("t2", t2).ok());
  }
  Catalog catalog_;
};

TEST_F(PlanTest, ScanBindsListedColumns) {
  PlanPtr p = PlanNode::Scan("t", {"v", "k"});
  p->Bind(catalog_);
  EXPECT_EQ(p->output_schema().Names(), (std::vector<std::string>{"v", "k"}));
  EXPECT_EQ(p->output_schema().field(0).type, TypeId::kDouble);
  EXPECT_EQ(p->base_tables(), (std::set<std::string>{"t"}));
}

TEST_F(PlanTest, SelectPreservesSchema) {
  PlanPtr p = PlanNode::Select(
      PlanNode::Scan("t", {"k", "v"}),
      Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{0})));
  p->Bind(catalog_);
  EXPECT_EQ(p->output_schema().Names(), (std::vector<std::string>{"k", "v"}));
}

TEST_F(PlanTest, ProjectAssignsNewNames) {
  PlanPtr p = PlanNode::Project(
      PlanNode::Scan("t", {"k", "v"}),
      {{Expr::Arith(ArithOp::kMul, Expr::Column("v"), Expr::Literal(2.0)),
        "v2"}});
  p->Bind(catalog_);
  EXPECT_EQ(p->output_schema().Names(), (std::vector<std::string>{"v2"}));
  EXPECT_EQ(p->NewNames(), (std::vector<std::string>{"v2"}));
}

TEST_F(PlanTest, AggregateSchemaGroupsThenAggs) {
  PlanPtr p = PlanNode::Aggregate(
      PlanNode::Scan("t", {"k", "v"}), {"k"},
      {{AggFunc::kSum, Expr::Column("v"), "sv"},
       {AggFunc::kCount, Expr::Literal(int64_t{1}), "c"}});
  p->Bind(catalog_);
  EXPECT_EQ(p->output_schema().Names(),
            (std::vector<std::string>{"k", "sv", "c"}));
  EXPECT_EQ(p->output_schema().field(1).type, TypeId::kDouble);  // sum(double)
  EXPECT_EQ(p->output_schema().field(2).type, TypeId::kInt64);
  EXPECT_EQ(p->NewNames(), (std::vector<std::string>{"sv", "c"}));
}

TEST_F(PlanTest, JoinSchemaConcatsAndSemiKeepsLeft) {
  PlanPtr inner = PlanNode::HashJoin(PlanNode::Scan("t", {"k", "v"}),
                                     PlanNode::Scan("t2", {"k2", "w"}),
                                     JoinKind::kInner, {"k"}, {"k2"});
  inner->Bind(catalog_);
  EXPECT_EQ(inner->output_schema().Names(),
            (std::vector<std::string>{"k", "v", "k2", "w"}));
  PlanPtr semi = PlanNode::HashJoin(PlanNode::Scan("t", {"k", "v"}),
                                    PlanNode::Scan("t2", {"k2", "w"}),
                                    JoinKind::kSemi, {"k"}, {"k2"});
  semi->Bind(catalog_);
  EXPECT_EQ(semi->output_schema().Names(),
            (std::vector<std::string>{"k", "v"}));
  EXPECT_EQ(semi->base_tables(), (std::set<std::string>{"t", "t2"}));
}

TEST_F(PlanTest, ParamFingerprintExcludesOutputNames) {
  // Two projects computing the same expression under different out names
  // share a parameter fingerprint (the graph canonicalizes new names).
  PlanPtr a = PlanNode::Project(PlanNode::Scan("t", {"v"}),
                                {{Expr::Column("v"), "x"}});
  PlanPtr b = PlanNode::Project(PlanNode::Scan("t", {"v"}),
                                {{Expr::Column("v"), "y"}});
  EXPECT_EQ(a->ParamFingerprint(nullptr), b->ParamFingerprint(nullptr));
}

TEST_F(PlanTest, ParamFingerprintMappingApplies) {
  PlanPtr p = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{1})));
  NameMap m{{"k", "k#9"}};
  EXPECT_NE(p->ParamFingerprint(nullptr), p->ParamFingerprint(&m));
}

TEST_F(PlanTest, HashKeyDistinguishesLiteralsButNotColumnNames) {
  PlanPtr a = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{1})));
  PlanPtr b = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Gt(Expr::Column("renamed"), Expr::Literal(int64_t{1})));
  PlanPtr c = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{2})));
  EXPECT_EQ(a->HashKey(), b->HashKey());  // name-space independent
  EXPECT_NE(a->HashKey(), c->HashKey());  // literal-sensitive
}

TEST_F(PlanTest, SignatureCoversParamColumns) {
  PlanPtr p = PlanNode::HashJoin(PlanNode::Scan("t", {"k", "v"}),
                                 PlanNode::Scan("t2", {"k2", "w"}),
                                 JoinKind::kInner, {"k"}, {"k2"});
  auto cols = p->ParamInputColumns();
  EXPECT_EQ(cols, (std::set<std::string>{"k", "k2"}));
  EXPECT_NE(p->Signature() & ColumnSignatureBit("k"), 0u);
}

TEST_F(PlanTest, TreeFingerprintDistinguishesSubtrees) {
  auto mk = [&](int64_t lit) {
    return PlanNode::Select(
        PlanNode::Scan("t", {"k"}),
        Expr::Gt(Expr::Column("k"), Expr::Literal(lit)));
  };
  EXPECT_EQ(mk(1)->TreeFingerprint(), mk(1)->TreeFingerprint());
  EXPECT_NE(mk(1)->TreeFingerprint(), mk(2)->TreeFingerprint());
}

TEST_F(PlanTest, CloneAndWithChildren) {
  PlanPtr scan = PlanNode::Scan("t", {"k"});
  PlanPtr sel = PlanNode::Select(
      scan, Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{0})));
  sel->Bind(catalog_);
  PlanPtr clone = sel->CloneShallow();
  EXPECT_FALSE(clone->bound());
  EXPECT_EQ(clone->child(0), scan);  // children shared
  PlanPtr other = PlanNode::Scan("t", {"k"});
  PlanPtr swapped = sel->WithChildren({other});
  EXPECT_EQ(swapped->child(0), other);
  EXPECT_EQ(sel->child(0), scan);  // original untouched
}

TEST_F(PlanTest, CloneParamsRenamed) {
  PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Scan("t", {"k", "v"}), {"k"},
      {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  PlanPtr renamed = agg->CloneParamsRenamed({{"k", "k#1"}, {"v", "v#1"}});
  EXPECT_EQ(renamed->num_children(), 0);
  EXPECT_EQ(renamed->group_by()[0], "k#1");
  std::set<std::string> cols;
  renamed->aggregates()[0].arg->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"v#1"}));
}

TEST_F(PlanTest, UnionRequiresCompatibleChildren) {
  PlanPtr u = PlanNode::UnionAll(
      {PlanNode::Scan("t", {"k"}), PlanNode::Scan("t", {"k"})});
  u->Bind(catalog_);
  EXPECT_EQ(u->output_schema().num_fields(), 1);
}

TEST_F(PlanTest, CachedScanBindsRenamedSchema) {
  TablePtr cached = MakeTable(Schema({{"x#3", TypeId::kInt32}}));
  cached->AppendRow({int32_t{5}});
  PlanPtr p = PlanNode::CachedScan(cached, {"k"});
  p->Bind(catalog_);
  EXPECT_EQ(p->output_schema().Names(), (std::vector<std::string>{"k"}));
  EXPECT_TRUE(p->base_tables().empty());
}

TEST_F(PlanTest, BindIsIdempotent) {
  PlanPtr p = PlanNode::Scan("t", {"k"});
  p->Bind(catalog_);
  p->Bind(catalog_);
  EXPECT_TRUE(p->bound());
}

}  // namespace
}  // namespace recycledb
