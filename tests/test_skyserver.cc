// Tests for the synthetic SkyServer workload and its table function.
#include <gtest/gtest.h>

#include "baseline/keepall.h"
#include "recycler/recycler.h"
#include "skyserver/skyserver.h"
#include "test_util.h"

namespace recycledb {
namespace {

class SkyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    skyserver::Setup(20000, catalog_);
  }
  static Catalog* catalog_;
};
Catalog* SkyTest::catalog_ = nullptr;

TEST_F(SkyTest, ConeSearchReturnsOnlyObjectsWithinRadius) {
  PlanPtr fn = PlanNode::FunctionScan("fGetNearbyObjEq", {195.0, 2.5, 0.5});
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  Recycler off(catalog_, cfg);
  ExecResult r = off.Execute(fn);
  ASSERT_GT(r.table->num_rows(), 0);
  const double* dist = r.table->ColumnByName("distance")->Raw<double>();
  for (int64_t i = 0; i < r.table->num_rows(); ++i) {
    EXPECT_GE(dist[i], 0.0);
    EXPECT_LE(dist[i], 0.5);
  }
}

TEST_F(SkyTest, ConeRadiusMonotone) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  Recycler off(catalog_, cfg);
  auto count = [&](double radius) {
    return off.Execute(PlanNode::FunctionScan("fGetNearbyObjEq",
                                              {195.0, 2.5, radius}))
        .table->num_rows();
  };
  EXPECT_LE(count(0.2), count(0.5));
  EXPECT_LE(count(0.5), count(2.0));
}

TEST_F(SkyTest, WorkloadHasDominantPatternSharingFunctionCall) {
  Rng rng(5);
  auto workload = skyserver::GenerateWorkload(100, &rng);
  ASSERT_EQ(workload.size(), 100u);
  int dominant = 0;
  std::set<std::string> function_fps;
  for (const auto& q : workload) {
    if (q.dominant) ++dominant;
    // Find the FunctionScan leaf.
    const PlanNode* n = q.plan.get();
    while (n->num_children() > 0) n = n->child(0).get();
    ASSERT_EQ(n->type(), OpType::kFunctionScan);
    function_fps.insert(n->ParamFingerprint(nullptr));
  }
  EXPECT_GT(dominant, 50);
  // Every query shares the same fGetNearbyObjEq(195, 2.5, 0.5) call.
  EXPECT_EQ(function_fps.size(), 1u);
}

TEST_F(SkyTest, RecyclerReusesFunctionCallAcrossVariants) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(catalog_, cfg);
  Rng rng(5);
  auto workload = skyserver::GenerateWorkload(30, &rng);
  int64_t reuses_before = rec.counters().reuses.load();
  for (const auto& q : workload) rec.Execute(q.plan);
  EXPECT_GT(rec.counters().reuses.load(), reuses_before + 10);
  // The cache stays small (the paper: a few hundred KB fits everything).
  EXPECT_LT(rec.graph().Stats().cached_bytes, 4 << 20);
}

TEST_F(SkyTest, RecyclerAndOffAgreeOnWorkloadResults) {
  RecyclerConfig on_cfg;
  on_cfg.mode = RecyclerMode::kSpeculation;
  Recycler on(catalog_, on_cfg);
  RecyclerConfig off_cfg;
  off_cfg.mode = RecyclerMode::kOff;
  Recycler off(catalog_, off_cfg);
  Rng rng(11);
  auto workload = skyserver::GenerateWorkload(20, &rng);
  for (const auto& q : workload) {
    ExecResult r_on = on.Execute(q.plan);
    ExecResult r_off = off.Execute(q.plan);
    // LIMIT over a join is order-dependent but deterministic in this
    // engine, and reuse preserves the cached row order.
    EXPECT_EQ(recycledb::testing::RowMultiset(*r_on.table),
              recycledb::testing::RowMultiset(*r_off.table));
  }
}

TEST_F(SkyTest, KeepAllBaselineHandlesFunctionScan) {
  KeepAllEngine keepall(catalog_, {});
  Rng rng(5);
  auto workload = skyserver::GenerateWorkload(10, &rng);
  for (const auto& q : workload) {
    TablePtr r = keepall.Execute(q.plan);
    EXPECT_LE(r->num_rows(), 15);  // LIMIT bounded
  }
  EXPECT_GT(keepall.stats().node_hits, 0);
}

}  // namespace
}  // namespace recycledb
