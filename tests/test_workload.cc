// Tests for the multi-stream workload driver and the qgen parameter
// domains (the source of the throughput test's sharing potential).
#include <gtest/gtest.h>

#include <set>

#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "workload/driver.h"

namespace recycledb {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    tpch::Generate(0.003, catalog_);
  }
  static Catalog* catalog_;
};
Catalog* WorkloadTest::catalog_ = nullptr;

TEST_F(WorkloadTest, QgenDomainsAreBounded) {
  Rng rng(1);
  // Q6 quantity in {24, 25}; Q18 in [312, 315]; Q1 delta in [60, 120].
  std::set<int64_t> q6, q18;
  for (int i = 0; i < 200; ++i) {
    q6.insert(tpch::GenerateParams(6, &rng, 1).i1);
    q18.insert(tpch::GenerateParams(18, &rng, 1).i1);
    tpch::QueryParams p1 = tpch::GenerateParams(1, &rng, 1);
    int32_t delta = MakeDate(1998, 12, 1) - p1.date1;
    EXPECT_GE(delta, 60);
    EXPECT_LE(delta, 120);
  }
  EXPECT_LE(q6.size(), 2u);
  EXPECT_LE(q18.size(), 4u);
}

TEST_F(WorkloadTest, QgenDistinctPairParameters) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    tpch::QueryParams p7 = tpch::GenerateParams(7, &rng, 1);
    EXPECT_NE(p7.s1, p7.s2);
    tpch::QueryParams p12 = tpch::GenerateParams(12, &rng, 1);
    EXPECT_NE(p12.s1, p12.s2);
    tpch::QueryParams p16 = tpch::GenerateParams(16, &rng, 1);
    std::set<std::string> sizes(p16.strs.begin(), p16.strs.end());
    EXPECT_EQ(sizes.size(), 8u);
  }
}

TEST_F(WorkloadTest, StreamIsPermutationOfAllPatterns) {
  Rng rng(3);
  auto stream = tpch::GenerateStream(0, &rng, 1);
  ASSERT_EQ(stream.size(), 22u);
  std::set<int> patterns;
  for (const auto& q : stream) patterns.insert(q.query);
  EXPECT_EQ(patterns.size(), 22u);
}

TEST_F(WorkloadTest, ParameterCollisionsGrowWithStreams) {
  // The paper's sharing potential: with more streams, more parameter
  // collisions. Count distinct Q6 parameter triples across N streams.
  auto distinct_q6 = [&](int nstreams) {
    Rng rng(7);
    std::set<std::string> seen;
    for (int s = 0; s < nstreams; ++s) {
      tpch::QueryParams p = tpch::GenerateParams(6, &rng, 1);
      seen.insert(std::to_string(p.date1) + "/" + std::to_string(p.d1) + "/" +
                  std::to_string(p.i1));
    }
    return static_cast<int>(seen.size());
  };
  // Domain size is 5*8*2 = 80: by 256 streams most values repeat.
  EXPECT_EQ(distinct_q6(4), 4);       // few collisions at 4 streams
  EXPECT_LT(distinct_q6(256), 81);    // saturated at 256
}

TEST_F(WorkloadTest, DriverRunsAllQueriesAndAggregates) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(catalog_, cfg);
  std::vector<workload::StreamSpec> streams;
  Rng rng(9);
  for (int s = 0; s < 4; ++s) {
    workload::StreamSpec spec;
    for (int q : {1, 6, 13}) {
      tpch::QueryParams p = tpch::GenerateParams(q, &rng, 0.003);
      spec.labels.push_back("Q" + std::to_string(q));
      spec.plans.push_back(tpch::BuildQuery(q, p, 0.003));
    }
    streams.push_back(std::move(spec));
  }
  workload::RunReport report = workload::RunStreams(&rec, streams, 4);
  EXPECT_EQ(report.records.size(), 12u);
  EXPECT_EQ(report.stream_ms.size(), 4u);
  for (double ms : report.stream_ms) EXPECT_GT(ms, 0.0);
  ASSERT_EQ(report.by_label.size(), 3u);
  EXPECT_EQ(report.by_label.at("Q1").count, 4);
  EXPECT_GT(report.AvgStreamMs(), 0.0);
  std::string trace = workload::FormatTrace(report);
  EXPECT_NE(trace.find("Q1"), std::string::npos);
}

TEST_F(WorkloadTest, ConcurrencyCapRespectedAndResultsStable) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(catalog_, cfg);
  Rng rng(13);
  // One fixed parameter assignment shared by all 8 streams, so every
  // stream issues the identical Q6 and sharing is guaranteed.
  tpch::QueryParams p = tpch::GenerateParams(6, &rng, 0.003);
  std::vector<workload::StreamSpec> streams;
  for (int s = 0; s < 8; ++s) {
    workload::StreamSpec spec;
    spec.labels.push_back("Q6");
    spec.plans.push_back(tpch::BuildQuery(6, p, 0.003));
    streams.push_back(std::move(spec));
  }
  workload::RunReport report = workload::RunStreams(&rec, streams, 2);
  EXPECT_EQ(report.records.size(), 8u);
  // At least some executions should have reused or stalled on peers.
  int reuse_or_stall = 0;
  for (const auto& r : report.records) {
    reuse_or_stall += r.trace.num_reuses + r.trace.num_stalls;
  }
  EXPECT_GT(reuse_or_stall, 0);
}

}  // namespace
}  // namespace recycledb
