// Unit tests for the store operator: materialize mode, speculative
// buffering with accept/abandon, buffer caps, pass-through transparency.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operators.h"
#include "exec/store.h"

namespace recycledb {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 10000; ++i) t->AppendRow({int32_t{i}});
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  OperatorPtr MakeScan() {
    TablePtr t = catalog_.GetTable("t");
    return std::make_unique<ScanOp>(Schema({{"k", TypeId::kInt32}}), t,
                                    std::vector<int>{0});
  }

  static int64_t Drain(Operator* op) {
    op->Open();
    Batch b;
    int64_t rows = 0;
    while (op->NextTimed(&b)) rows += b.num_rows;
    op->Close();
    return rows;
  }

  Catalog catalog_;
};

TEST_F(StoreTest, MaterializeModePassesThroughAndCaptures) {
  TablePtr captured;
  double cost = -1;
  StoreRequest req;
  req.mode = StoreMode::kMaterialize;
  req.on_complete = [&](void*, TablePtr result, double ms) {
    captured = result;
    cost = ms;
  };
  StoreOp store(MakeScan(), req);
  EXPECT_EQ(Drain(&store), 10000);  // flow uninterrupted
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->num_rows(), 10000);
  EXPECT_GE(cost, 0.0);
  EXPECT_TRUE(store.materializing());
}

TEST_F(StoreTest, SpeculativeAcceptMaterializes) {
  TablePtr captured;
  int decisions = 0;
  StoreRequest req;
  req.mode = StoreMode::kSpeculative;
  req.keep_going = [&](void*, const SpeculationEstimate& est) {
    ++decisions;
    EXPECT_GE(est.progress, 0.0);
    EXPECT_LE(est.progress, 1.0);
    return true;  // always beneficial
  };
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  StoreOp store(MakeScan(), req);
  EXPECT_EQ(Drain(&store), 10000);
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->num_rows(), 10000);
  EXPECT_GT(decisions, 1);  // estimates sharpened over multiple batches
}

TEST_F(StoreTest, SpeculativeAbandonStillStreamsAllTuples) {
  TablePtr captured = MakeTable(Schema(std::vector<Field>{}));  // sentinel
  StoreRequest req;
  req.mode = StoreMode::kSpeculative;
  req.keep_going = [](void*, const SpeculationEstimate&) { return false; };
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  StoreOp store(MakeScan(), req);
  EXPECT_EQ(Drain(&store), 10000);  // the query still sees every tuple
  EXPECT_EQ(captured, nullptr);     // nothing materialized
  EXPECT_FALSE(store.materializing());
}

TEST_F(StoreTest, SpeculativeLateAbandonReleasesBuffer) {
  // Reject only once the estimates have sharpened past 30% progress:
  // the withheld prefix must still reach the parent.
  TablePtr captured = MakeTable(Schema(std::vector<Field>{}));
  StoreRequest req;
  req.mode = StoreMode::kSpeculative;
  req.keep_going = [](void*, const SpeculationEstimate& est) {
    return est.progress < 0.3;
  };
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  StoreOp store(MakeScan(), req);
  EXPECT_EQ(Drain(&store), 10000);
  EXPECT_EQ(captured, nullptr);
}

TEST_F(StoreTest, BufferCapForcesAbandon) {
  TablePtr captured = MakeTable(Schema(std::vector<Field>{}));
  StoreRequest req;
  req.mode = StoreMode::kSpeculative;
  req.buffer_cap_bytes = 1024;  // 10k int32 rows exceed this immediately
  req.keep_going = [](void*, const SpeculationEstimate&) { return true; };
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  StoreOp store(MakeScan(), req);
  EXPECT_EQ(Drain(&store), 10000);
  EXPECT_EQ(captured, nullptr);
}

TEST_F(StoreTest, ExecutorInjectsStoreViaRequestMap) {
  PlanPtr plan = PlanNode::Scan("t", {"k"});
  plan->Bind(catalog_);
  TablePtr captured;
  std::map<const PlanNode*, StoreRequest> stores;
  StoreRequest req;
  req.mode = StoreMode::kMaterialize;
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  stores[plan.get()] = req;
  Executor exec(&catalog_);
  ExecResult r = exec.Run(plan, &stores);
  EXPECT_EQ(r.table->num_rows(), 10000);
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->num_rows(), 10000);
}

TEST_F(StoreTest, EmptyInputMaterializesEmptyResult) {
  Schema s({{"x", TypeId::kInt32}});
  TablePtr empty = MakeTable(s);
  ASSERT_TRUE(catalog_.RegisterTable("empty", empty).ok());
  auto scan = std::make_unique<ScanOp>(s, empty, std::vector<int>{0});
  TablePtr captured;
  StoreRequest req;
  req.mode = StoreMode::kSpeculative;
  req.keep_going = [](void*, const SpeculationEstimate&) { return true; };
  req.on_complete = [&](void*, TablePtr result, double) { captured = result; };
  StoreOp store(std::move(scan), req);
  EXPECT_EQ(Drain(&store), 0);
  ASSERT_NE(captured, nullptr);
  EXPECT_EQ(captured->num_rows(), 0);
}

}  // namespace
}  // namespace recycledb
