// Unit tests for src/common: types, dates, hashing, RNG, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace recycledb {
namespace {

TEST(TypesTest, TypeNames) {
  EXPECT_STREQ(TypeName(TypeId::kInt32), "INT32");
  EXPECT_STREQ(TypeName(TypeId::kString), "STRING");
  EXPECT_STREQ(TypeName(TypeId::kDate), "DATE");
}

TEST(TypesTest, IsNumeric) {
  EXPECT_TRUE(IsNumeric(TypeId::kInt32));
  EXPECT_TRUE(IsNumeric(TypeId::kInt64));
  EXPECT_TRUE(IsNumeric(TypeId::kDouble));
  EXPECT_TRUE(IsNumeric(TypeId::kDate));
  EXPECT_FALSE(IsNumeric(TypeId::kString));
  EXPECT_FALSE(IsNumeric(TypeId::kBool));
}

TEST(DatumTest, TypeMapping) {
  EXPECT_EQ(DatumType(Datum(true)), TypeId::kBool);
  EXPECT_EQ(DatumType(Datum(int32_t{4})), TypeId::kInt32);
  EXPECT_EQ(DatumType(Datum(int64_t{4})), TypeId::kInt64);
  EXPECT_EQ(DatumType(Datum(3.5)), TypeId::kDouble);
  EXPECT_EQ(DatumType(Datum(std::string("x"))), TypeId::kString);
}

TEST(DatumTest, ToStringStable) {
  EXPECT_EQ(DatumToString(Datum(int64_t{42})), "42");
  EXPECT_EQ(DatumToString(Datum(std::string("abc"))), "'abc'");
  EXPECT_EQ(DatumToString(Datum(true)), "true");
  EXPECT_EQ(DatumToString(Datum()), "NULL");
}

TEST(DatumTest, CompareNumericCrossType) {
  EXPECT_EQ(DatumCompare(Datum(int32_t{3}), Datum(3.0)), 0);
  EXPECT_LT(DatumCompare(Datum(int32_t{2}), Datum(int64_t{3})), 0);
  EXPECT_GT(DatumCompare(Datum(4.5), Datum(int32_t{4})), 0);
}

TEST(DatumTest, CompareStrings) {
  EXPECT_LT(DatumCompare(Datum(std::string("apple")),
                         Datum(std::string("banana"))), 0);
  EXPECT_TRUE(DatumEquals(Datum(std::string("x")), Datum(std::string("x"))));
}

TEST(DateTest, EpochAnchors) {
  EXPECT_EQ(MakeDate(1970, 1, 1), 0);
  EXPECT_EQ(MakeDate(1970, 1, 2), 1);
  EXPECT_EQ(MakeDate(1969, 12, 31), -1);
}

TEST(DateTest, RoundTrip) {
  for (int y : {1992, 1995, 1998, 2000, 2024}) {
    for (int m : {1, 2, 6, 12}) {
      for (int d : {1, 15, 28}) {
        int32_t days = MakeDate(y, m, d);
        EXPECT_EQ(DateYear(days), y);
        EXPECT_EQ(DateMonth(days), m);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
        EXPECT_EQ(DateToString(days), buf);
        EXPECT_EQ(ParseDate(buf), days);
      }
    }
  }
}

TEST(DateTest, LeapYears) {
  EXPECT_EQ(MakeDate(1996, 3, 1) - MakeDate(1996, 2, 1), 29);  // leap
  EXPECT_EQ(MakeDate(1995, 3, 1) - MakeDate(1995, 2, 1), 28);
  EXPECT_EQ(MakeDate(2000, 3, 1) - MakeDate(2000, 2, 1), 29);  // 400-rule
  EXPECT_EQ(MakeDate(1900, 3, 1) - MakeDate(1900, 2, 1), 28);  // 100-rule
}

TEST(DateTest, TpchRangeMonotonic) {
  int32_t prev = MakeDate(1992, 1, 1);
  for (int y = 1992; y <= 1998; ++y) {
    for (int m = 1; m <= 12; ++m) {
      int32_t d = MakeDate(y, m, 1);
      EXPECT_GE(d, prev);
      prev = d;
    }
  }
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(HashString("lineitem"), HashString("lineitem"));
  EXPECT_NE(HashString("lineitem"), HashString("orders"));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t a = HashString("a"), b = HashString("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(HashTest, SignatureBitSubset) {
  uint64_t sig = ColumnSignatureBit("l_orderkey") |
                 ColumnSignatureBit("l_quantity");
  EXPECT_EQ(sig & ColumnSignatureBit("l_orderkey"),
            ColumnSignatureBit("l_orderkey"));
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing table");
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleThenReuse) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(10); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 11);
}

}  // namespace
}  // namespace recycledb
