// ThreadPool contract tests: the Shutdown()/drain guarantees and the
// WaitIdle-vs-Submit and destructor-with-queued-work edge cases the
// multi-stream workload driver depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace recycledb {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  EXPECT_EQ(pool.num_threads(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  // One worker, many queued tasks: destruction must run every queued task
  // before joining, never drop work.
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(pool.Submit([&done] {
        SleepMs(1);
        done.fetch_add(1);
      }));
    }
    // Destructor fires with most of the queue still pending.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ShutdownDrainsThenRejectsSubmit) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pool.Submit([&done] {
      SleepMs(1);
      done.fetch_add(1);
    }));
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 20);  // queued work drained, not dropped
  EXPECT_FALSE(pool.Submit([&done] { done.fetch_add(1); }));
  EXPECT_EQ(done.load(), 20);  // rejected task never ran
  pool.WaitIdle();             // idle after shutdown: returns immediately
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  pool.Shutdown();
  pool.Shutdown();  // second call is a no-op
  EXPECT_EQ(done.load(), 1);
  // Destructor after explicit Shutdown must also be safe.
}

TEST(ThreadPoolTest, WaitIdleVsConcurrentSubmit) {
  // WaitIdle racing a live submitter must neither hang nor crash; once
  // the submitter is joined, a final WaitIdle covers everything.
  ThreadPool pool(3);
  std::atomic<int> done{0};
  std::atomic<bool> submitting{true};
  std::thread submitter([&] {
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    submitting.store(false);
  });
  while (submitting.load()) {
    pool.WaitIdle();  // may observe transient idle points mid-stream
  }
  submitter.join();
  pool.WaitIdle();  // submitter stopped: this one is the full barrier
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentSubmittersEachTaskRunsOnce) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
      }
    });
  }
  for (auto& t : submitters) t.join();
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPoolTest, SubmitDuringShutdownEitherRunsOrIsRejected) {
  // A submitter racing Shutdown: every accepted task must run; rejected
  // submissions must not. The sum of accepted tasks equals executions.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::atomic<int> accepted{0};
  std::thread submitter([&] {
    for (int i = 0; i < 500; ++i) {
      if (pool.Submit([&done] { done.fetch_add(1); })) {
        accepted.fetch_add(1);
      }
    }
  });
  SleepMs(2);
  pool.Shutdown();
  submitter.join();
  EXPECT_EQ(done.load(), accepted.load());
}

}  // namespace
}  // namespace recycledb
