// Tests for the fleet tier: several engine processes sharing one
// cold-tier directory through the ownership manifest.
//
// Covered here: manifest round trips and fail-soft parsing (corruption,
// version skew), two live instances over one directory (the second
// serves exact / subsumption / stitch hits from the first's spills
// without re-executing, and never steals ownership), stale-lease
// takeover (expired owners are claimed, live ones are not), the
// read-only adoption mode, the async spill queue's drain barrier, and a
// spill-vs-adopt race between two instances (run under TSan by the
// `fleet` ctest label). Warm-standby failover rides the same harness:
// a tailing standby serves the primary's results from statement one.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <filesystem>
#include <fstream>
#include <thread>

#include "fleet/lock_file.h"
#include "fleet/manifest.h"
#include "recycledb/recycledb.h"
#include "recycler/cold_tier.h"
#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

namespace fs = std::filesystem;
using recycledb::testing::RowMultiset;

class TempSpillDir {
 public:
  TempSpillDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp");
    tmpl += "/rdb-fleet-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = mkdtemp(buf.data());
    RDB_CHECK(d != nullptr);
    path_ = d;
  }
  ~TempSpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic base table shared by every instance in a test: the
/// fleet contract is same base data, so each process builds the same
/// rows from the same generator.
TablePtr MakeTestTable(int rows) {
  Schema s({{"a", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int32_t>(i % 10),
                  static_cast<double>((i * 7919) % 10000)});
  }
  return t;
}

PlanPtr RangeQuery(double lo, double hi) {
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "v"}),
      Expr::And(Expr::Ge(Expr::Column("v"), Expr::Literal(lo)),
                Expr::Lt(Expr::Column("v"), Expr::Literal(hi))));
}

PlanPtr BroadQuery(double lo) {
  return PlanNode::Select(PlanNode::Scan("f", {"a", "v"}),
                          Expr::Gt(Expr::Column("v"), Expr::Literal(lo)));
}

PlanPtr RefineQuery(double lo, int32_t a) {
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(lo)),
                Expr::Eq(Expr::Column("a"), Expr::Literal(a))));
}

/// One fleet member over `spill_dir` under the given instance id.
std::unique_ptr<Database> OpenInstance(const std::string& spill_dir,
                                       const std::string& instance,
                                       int rows = 20000,
                                       bool read_only = false,
                                       int64_t lease_ms = 30000) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = 256ll << 20;
  options.recycler.spill_dir = spill_dir;
  options.recycler.cold_tier_capacity_bytes = 256ll << 20;
  options.recycler.shared_spill_dir = true;
  options.recycler.fleet_instance = instance;
  options.recycler.spill_read_only = read_only;
  options.recycler.fleet_lease_ms = lease_ms;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  RDB_CHECK(db->CreateTable("f", MakeTestTable(rows)).ok());
  return db;
}

std::multiset<std::string> Expected(Database* db, PlanPtr plan) {
  SessionOptions so;
  so.bypass_recycler = true;
  auto session = db->Connect(so);
  Result r = session->Execute(std::move(plan));
  RDB_CHECK(r.ok());
  return RowMultiset(*r.table());
}

/// Runs the canonical warm-up on instance A: three disjoint slices plus
/// a broad slice, all demoted to the shared cold tier and published in
/// the manifest (FlushCache drains the async queue before returning).
void WarmPrimary(Database* a) {
  ASSERT_TRUE(a->Execute(RangeQuery(0, 3000)).ok());
  ASSERT_TRUE(a->Execute(RangeQuery(3000, 6000)).ok());
  ASSERT_TRUE(a->Execute(BroadQuery(5000)).ok());
  a->FlushCache();
  ASSERT_GT(a->recycler().cold_tier().Stats().entries, 0);
}

// ---------------------------------------------------------------------------
// Manifest format
// ---------------------------------------------------------------------------

TEST(FleetManifest, RoundTripsOwnersEntriesPurges) {
  fleet::Manifest m;
  m.seq = 42;
  m.owners.push_back({"alpha", 1700000000000});
  m.owners.push_back({"beta", 1700000123456});
  m.entries.push_back({"4{select}(0{scan:f})", "r01-alpha-1.spill", "alpha", 7});
  m.entries.push_back({"9{agg}(0{scan:g})", "r02-beta-3.spill", "beta", 41});
  m.purges.push_back({"f", 5, false});
  m.purges.push_back({"g", 6, true});

  fleet::Manifest back;
  ASSERT_TRUE(fleet::ParseManifest(fleet::SerializeManifest(m), &back).ok());
  EXPECT_EQ(back.seq, 42);
  ASSERT_EQ(back.owners.size(), 2u);
  EXPECT_EQ(back.owners[1].id, "beta");
  EXPECT_EQ(back.owners[1].lease_expiry_ms, 1700000123456);
  ASSERT_EQ(back.entries.size(), 2u);
  EXPECT_EQ(back.entries[0].canon_key, "4{select}(0{scan:f})");
  EXPECT_EQ(back.entries[0].file, "r01-alpha-1.spill");
  EXPECT_EQ(back.entries[0].owner, "alpha");
  EXPECT_EQ(back.entries[0].admit_seq, 7);
  ASSERT_EQ(back.purges.size(), 2u);
  EXPECT_EQ(back.purges[1].table, "g");
  EXPECT_TRUE(back.purges[1].unversioned_only);

  // Liveness: unknown and empty owners are never live.
  EXPECT_TRUE(back.OwnerLive("alpha", 1699999999999));
  EXPECT_FALSE(back.OwnerLive("alpha", 1700000000001));
  EXPECT_FALSE(back.OwnerLive("ghost", 0));
  EXPECT_FALSE(back.OwnerLive("", 0));
}

TEST(FleetManifest, CorruptionAndSkewAreRecoverable) {
  fleet::Manifest m;
  m.seq = 1;
  m.entries.push_back({"k", "f.spill", "a", 1});
  std::string buf = fleet::SerializeManifest(m);

  // Flip a byte in the middle: checksum fails, recoverable status.
  std::string corrupt = buf;
  corrupt[corrupt.size() / 2] ^= 0x40;
  fleet::Manifest out;
  Status st = fleet::ParseManifest(corrupt, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  // Truncation.
  EXPECT_FALSE(
      fleet::ParseManifest(buf.substr(0, buf.size() / 2), &out).ok());
  // Garbage.
  EXPECT_FALSE(fleet::ParseManifest("not a manifest at all", &out).ok());
  // Empty.
  EXPECT_FALSE(fleet::ParseManifest("", &out).ok());

  // Version skew: a manifest from a newer engine is rejected
  // recoverably (the version field sits right after the 4-byte magic).
  std::string skewed = buf;
  uint32_t newer = fleet::kManifestFormatVersion + 1;
  std::memcpy(&skewed[4], &newer, sizeof(newer));
  st = fleet::ParseManifest(skewed, &out);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(FleetManifest, PurgeLogIsBounded) {
  fleet::Manifest m;
  for (size_t i = 0; i < fleet::kManifestMaxPurges + 20; ++i) {
    m.AddPurge("t" + std::to_string(i), false);
    ++m.seq;
  }
  EXPECT_LE(m.purges.size(), fleet::kManifestMaxPurges);
  // The survivors are the newest records.
  EXPECT_EQ(m.purges.back().table,
            "t" + std::to_string(fleet::kManifestMaxPurges + 19));
}

// ---------------------------------------------------------------------------
// Two instances over one directory
// ---------------------------------------------------------------------------

TEST(FleetSharing, SecondInstanceServesPeerSpillsWithoutReexecuting) {
  TempSpillDir dir;
  auto a = OpenInstance(dir.path(), "alpha");
  WarmPrimary(a.get());

  // B opens while A is live: A's files surface as peer entries.
  auto b = OpenInstance(dir.path(), "beta");
  ColdTierStats bstats = b->recycler().cold_tier().Stats();
  EXPECT_GT(bstats.peer_entries, 0);
  EXPECT_EQ(bstats.used_bytes, 0);  // peer files never count against B's cap

  auto expected_exact = Expected(b.get(), RangeQuery(0, 3000));
  auto expected_refine = Expected(b.get(), RefineQuery(5000, 3));
  auto expected_stitch = Expected(b.get(), RangeQuery(1000, 5000));

  // Exact: B adopts A's slice by canonical key and serves it from disk.
  Result exact = b->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(exact.ok());
  EXPECT_GE(exact.adoptions(), 1);
  EXPECT_GE(exact.reuses(), 1);
  EXPECT_GE(exact.cold_hits(), 1);
  EXPECT_EQ(exact.materialized(), 0);  // served, not re-executed
  EXPECT_EQ(RowMultiset(*exact.table()), expected_exact);

  // Subsumption: prime the broad shape (adopting A's spill for it, again
  // from disk rather than by re-executing), then the refinement subsumes
  // from the adopted superset and filters.
  Result broad = b->Execute(BroadQuery(5000));
  ASSERT_TRUE(broad.ok());
  EXPECT_GE(broad.adoptions(), 1);
  EXPECT_GE(broad.cold_hits(), 1);
  EXPECT_EQ(broad.materialized(), 0);
  Result refine = b->Execute(RefineQuery(5000, 3));
  ASSERT_TRUE(refine.ok());
  EXPECT_GE(refine.subsumption_reuses(), 1);
  EXPECT_EQ(RowMultiset(*refine.table()), expected_refine);

  // Stitch: both of A's disjoint slices cover the probe window.
  Result stitch = b->Execute(RangeQuery(1000, 5000));
  ASSERT_TRUE(stitch.ok());
  EXPECT_GE(stitch.partial_reuses(), 1);
  EXPECT_EQ(RowMultiset(*stitch.table()), expected_stitch);

  EXPECT_GE(b->counters().cold_adoptions.load(), 2);

  // Ownership never moved: every entry in the manifest still names A.
  fleet::Manifest m;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &m).ok());
  ASSERT_GT(m.entries.size(), 0u);
  for (const auto& e : m.entries) EXPECT_EQ(e.owner, "alpha");
  EXPECT_NE(m.FindOwner("alpha"), nullptr);
}

TEST(FleetSharing, CorruptManifestFallsBackToDirectoryRescan) {
  TempSpillDir dir;
  {
    auto a = OpenInstance(dir.path(), "alpha");
    WarmPrimary(a.get());
  }  // graceful shutdown drops alpha's owner record

  // Smash the manifest. Opening must fall back to scanning the spill
  // files themselves; every image stays adoptable.
  {
    std::ofstream f(fleet::ManifestPath(dir.path()),
                    std::ios::binary | std::ios::trunc);
    f << "garbage garbage garbage";
  }
  auto b = OpenInstance(dir.path(), "beta");
  EXPECT_GT(b->recycler().cold_tier().Stats().entries, 0);

  auto expected = Expected(b.get(), RangeQuery(0, 3000));
  Result r = b->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.adoptions(), 1);
  EXPECT_GE(r.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*r.table()), expected);

  // B's first sync rebuilt a valid manifest.
  fleet::Manifest m;
  EXPECT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &m).ok());
}

TEST(FleetSharing, VersionSkewedManifestFallsBackToRescan) {
  TempSpillDir dir;
  {
    auto a = OpenInstance(dir.path(), "alpha");
    WarmPrimary(a.get());
  }
  // Rewrite the manifest with a future format version (valid checksum
  // layout is irrelevant: the version check rejects first).
  std::string buf;
  {
    std::ifstream in(fleet::ManifestPath(dir.path()), std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    buf = ss.str();
  }
  uint32_t newer = fleet::kManifestFormatVersion + 7;
  std::memcpy(&buf[4], &newer, sizeof(newer));
  {
    std::ofstream f(fleet::ManifestPath(dir.path()),
                    std::ios::binary | std::ios::trunc);
    f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  }

  auto b = OpenInstance(dir.path(), "beta");
  EXPECT_GT(b->recycler().cold_tier().Stats().entries, 0);
  Result r = b->Execute(RangeQuery(3000, 6000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.cold_hits(), 1);
}

// ---------------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------------

TEST(FleetLease, ExpiredOwnersEntriesAreClaimedAtOpen) {
  TempSpillDir dir;
  {
    auto a = OpenInstance(dir.path(), "alpha");
    WarmPrimary(a.get());
  }
  // Resurrect alpha's owner record with an expired lease: a crashed
  // process that never cleaned up. (Graceful shutdown removed it, so
  // hand-write it back.)
  fleet::Manifest m;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &m).ok());
  m.owners.push_back({"alpha", fleet::UnixMillisNow() - 60 * 1000});
  ++m.seq;
  ASSERT_TRUE(
      fleet::WriteManifestFile(fleet::ManifestPath(dir.path()), m).ok());

  auto b = OpenInstance(dir.path(), "beta");
  ColdTierStats stats = b->recycler().cold_tier().Stats();
  EXPECT_GT(stats.entries, 0);
  EXPECT_EQ(stats.peer_entries, 0);   // dead owner: claimed, not peered
  EXPECT_GT(stats.used_bytes, 0);     // claimed files count against B

  // The claim is durable: the manifest now names beta.
  fleet::Manifest after;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &after).ok());
  ASSERT_GT(after.entries.size(), 0u);
  for (const auto& e : after.entries) EXPECT_EQ(e.owner, "beta");
}

TEST(FleetLease, LiveOwnersEntriesAreNotClaimed) {
  TempSpillDir dir;
  {
    auto a = OpenInstance(dir.path(), "alpha");
    WarmPrimary(a.get());
  }
  fleet::Manifest m;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &m).ok());
  m.owners.push_back({"alpha", fleet::UnixMillisNow() + 60 * 1000});
  ++m.seq;
  ASSERT_TRUE(
      fleet::WriteManifestFile(fleet::ManifestPath(dir.path()), m).ok());

  auto b = OpenInstance(dir.path(), "beta");
  ColdTierStats stats = b->recycler().cold_tier().Stats();
  EXPECT_GT(stats.peer_entries, 0);
  EXPECT_EQ(stats.used_bytes, 0);

  fleet::Manifest after;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &after).ok());
  for (const auto& e : after.entries) EXPECT_EQ(e.owner, "alpha");
}

TEST(FleetLease, StaleLeaseTakeoverAtRefresh) {
  TempSpillDir dir;
  auto a = OpenInstance(dir.path(), "alpha", /*rows=*/20000, false,
                        /*lease_ms=*/30000);
  WarmPrimary(a.get());
  auto b = OpenInstance(dir.path(), "beta");
  EXPECT_GT(b->recycler().cold_tier().Stats().peer_entries, 0);

  // Alpha "crashes": expire its lease in place (keep the owner record,
  // as a SIGKILL would).
  {
    fleet::DirLock lock;
    ASSERT_TRUE(
        fleet::DirLock::Acquire(fleet::ManifestLockPath(dir.path()), &lock)
            .ok());
    fleet::Manifest m;
    ASSERT_TRUE(
        fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &m).ok());
    fleet::ManifestOwner* alpha = m.FindOwner("alpha");
    ASSERT_NE(alpha, nullptr);
    alpha->lease_expiry_ms = fleet::UnixMillisNow() - 60 * 1000;
    ++m.seq;
    ASSERT_TRUE(
        fleet::WriteManifestFile(fleet::ManifestPath(dir.path()), m).ok());
  }

  ASSERT_TRUE(b->RefreshFleet().ok());
  EXPECT_GE(b->counters().fleet_lease_takeovers.load(), 1);
  ColdTierStats stats = b->recycler().cold_tier().Stats();
  EXPECT_EQ(stats.peer_entries, 0);
  EXPECT_GT(stats.used_bytes, 0);

  fleet::Manifest after;
  ASSERT_TRUE(
      fleet::ReadManifestFile(fleet::ManifestPath(dir.path()), &after).ok());
  for (const auto& e : after.entries) EXPECT_EQ(e.owner, "beta");

  // The adopted results still serve.
  auto expected = Expected(b.get(), RangeQuery(0, 3000));
  Result r = b->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*r.table()), expected);

  // Keep alpha alive to the end: its dtor must tolerate having been
  // taken over (it forfeits rather than deleting beta's files).
  a.reset();
  EXPECT_TRUE(fs::exists(fleet::ManifestPath(dir.path())));
  Result again = b->Execute(RangeQuery(3000, 6000));
  ASSERT_TRUE(again.ok());
}

// ---------------------------------------------------------------------------
// Read-only adoption mode
// ---------------------------------------------------------------------------

TEST(FleetReadOnly, AdoptsAndServesWithoutWriting) {
  TempSpillDir dir;
  {
    auto a = OpenInstance(dir.path(), "alpha");
    WarmPrimary(a.get());
  }
  const auto manifest_before =
      fs::file_size(fleet::ManifestPath(dir.path()));
  size_t files_before = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++files_before;
  }

  auto b = OpenInstance(dir.path(), "reader", 20000, /*read_only=*/true);
  ColdTierStats stats = b->recycler().cold_tier().Stats();
  EXPECT_GT(stats.peer_entries, 0);
  EXPECT_EQ(stats.used_bytes, 0);

  auto expected = Expected(b.get(), RangeQuery(0, 3000));
  Result r = b->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.adoptions(), 1);
  EXPECT_GE(r.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*r.table()), expected);

  // Evictions in read-only mode never touch the shared directory.
  b->FlushCache();
  b.reset();
  size_t files_after = 0;
  for (const auto& e : fs::directory_iterator(dir.path())) {
    (void)e;
    ++files_after;
  }
  EXPECT_EQ(files_after, files_before);
  EXPECT_EQ(fs::file_size(fleet::ManifestPath(dir.path())), manifest_before);
}

TEST(FleetReadOnly, OpenProbeDistinguishesAdoptionFromUnusableDir) {
  TempSpillDir dir;
  // A regular file where a directory is required: both probes reject it
  // (this stands in for a genuinely unwritable dir — the suite may run
  // as root, where permission bits do not bind).
  const std::string not_a_dir = dir.path() + "/plainfile";
  {
    std::ofstream f(not_a_dir);
    f << "x";
  }
  const std::string under_file = not_a_dir + "/sub";
  EXPECT_FALSE(ColdTier::ValidateSpillDir(under_file).ok());
  EXPECT_FALSE(ColdTier::ValidateSpillDirReadable(under_file).ok());
  EXPECT_FALSE(ColdTier::ValidateSpillDirReadable(not_a_dir).ok());

  // A perfectly readable directory passes the read probe; Database::Open
  // accepts it in read-only mode without requiring writability.
  EXPECT_TRUE(ColdTier::ValidateSpillDirReadable(dir.path()).ok());
  DatabaseOptions options;
  options.recycler.spill_dir = dir.path();
  options.recycler.shared_spill_dir = true;
  options.recycler.spill_read_only = true;
  options.recycler.fleet_instance = "reader";
  std::unique_ptr<Database> db;
  EXPECT_TRUE(Database::Open(options, &db).ok());

  // Config validation: read-only requires the shared mode.
  DatabaseOptions bad;
  bad.recycler.spill_dir = dir.path();
  bad.recycler.spill_read_only = true;
  std::unique_ptr<Database> none;
  EXPECT_FALSE(Database::Open(bad, &none).ok());
}

// ---------------------------------------------------------------------------
// Async spill queue
// ---------------------------------------------------------------------------

TEST(FleetAsyncSpill, DrainBarrierCommitsEverythingQueued) {
  TempSpillDir dir;
  auto a = OpenInstance(dir.path(), "alpha");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(a->Execute(RangeQuery(i * 1200.0, (i + 1) * 1200.0)).ok());
  }
  a->FlushCache();  // enqueue + drain
  ColdTierStats stats = a->recycler().cold_tier().Stats();
  EXPECT_EQ(stats.pending_spills, 0);
  EXPECT_GE(stats.entries, 8);
  EXPECT_GE(a->counters().cold_spills.load(), 8);

  // Every queued image is already manifest-visible to a new peer.
  auto b = OpenInstance(dir.path(), "beta");
  EXPECT_GE(b->recycler().cold_tier().Stats().peer_entries, 8);
}

// ---------------------------------------------------------------------------
// Spill-vs-adopt race (TSan target)
// ---------------------------------------------------------------------------

TEST(FleetConcurrency, SpillVsAdoptRaceStaysConsistent) {
  TempSpillDir dir;
  auto a = OpenInstance(dir.path(), "alpha");
  auto b = OpenInstance(dir.path(), "beta");

  constexpr int kWindows = 6;
  std::vector<std::multiset<std::string>> expected;
  for (int k = 0; k < kWindows; ++k) {
    expected.push_back(
        Expected(a.get(), RangeQuery(k * 1500.0, (k + 1) * 1500.0)));
  }

  std::atomic<bool> stop{false};
  // A spills continuously: execute a window, flush it to the shared dir.
  std::thread spiller([&] {
    int i = 0;
    while (!stop.load()) {
      int k = i++ % kWindows;
      Result r = a->Execute(RangeQuery(k * 1500.0, (k + 1) * 1500.0));
      ASSERT_TRUE(r.ok());
      a->FlushCache();
    }
  });
  // B refreshes against the manifest and serves the same windows.
  std::thread adopter([&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(b->RefreshFleet().ok());
      int k = i % kWindows;
      Result r = b->Execute(RangeQuery(k * 1500.0, (k + 1) * 1500.0));
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(RowMultiset(*r.table()), expected[k]) << "window " << k;
    }
  });
  adopter.join();
  stop.store(true);
  spiller.join();

  EXPECT_GE(b->counters().fleet_refreshes.load(), 40);
}

// ---------------------------------------------------------------------------
// Warm standby
// ---------------------------------------------------------------------------

TEST(FleetStandby, TailingStandbyServesWarmAfterPromote) {
  TempSpillDir dir;
  auto primary = OpenInstance(dir.path(), "primary");
  WarmPrimary(primary.get());

  auto standby = OpenInstance(dir.path(), "standby");
  fleet::StandbyTailer tailer(standby.get(), {});
  ASSERT_TRUE(tailer.RefreshNow().ok());
  EXPECT_GE(tailer.refreshes(), 1);
  EXPECT_GT(standby->recycler().cold_tier().Stats().peer_entries, 0);

  // More results land on the primary while the standby tails.
  ASSERT_TRUE(primary->Execute(RangeQuery(6000, 9000)).ok());
  primary->FlushCache();
  ASSERT_TRUE(tailer.RefreshNow().ok());

  // Primary dies; the standby takes over.
  primary.reset();
  ASSERT_TRUE(tailer.Promote().ok());

  // First statements after failover serve from the primary's spills.
  auto expected = Expected(standby.get(), RangeQuery(0, 3000));
  Result r = standby->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.adoptions() + static_cast<int>(
                                standby->counters().cold_adoptions.load()),
            1);
  EXPECT_GE(r.cold_hits(), 1);
  EXPECT_EQ(r.materialized(), 0);
  EXPECT_EQ(RowMultiset(*r.table()), expected);

  Result later = standby->Execute(RangeQuery(6000, 9000));
  ASSERT_TRUE(later.ok());
  EXPECT_GE(later.cold_hits(), 1);
}

}  // namespace
}  // namespace recycledb
