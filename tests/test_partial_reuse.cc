// Tests for partial-reuse subsumption (range stitching): interval math,
// predicate decomposition, the interval index, stitched-plan correctness
// against cold execution (bit-identical row multisets), boundary-equality
// dedup, open-ended intervals, full cover via multiple slices, stitched
// result admission/widening, invalidation, and concurrent stitching.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "plan/table_function.h"
#include "recycler/interval_index.h"
#include "recycler/recycler.h"
#include "recycler/subsumption.h"
#include "recycledb/recycledb.h"
#include "test_util.h"

namespace recycledb {
namespace {

using recycledb::testing::RowMultiset;

RangeBound Lo(double v, bool inclusive) { return {false, Datum{v}, inclusive}; }
RangeBound Hi(double v, bool inclusive) { return {false, Datum{v}, inclusive}; }
const RangeBound kUnbounded;

// ---------------------------------------------------------------------------
// Interval math
// ---------------------------------------------------------------------------

TEST(IntervalMath, TighterBounds) {
  EXPECT_TRUE(LoTighter(Lo(5, true), Lo(4, true)));
  EXPECT_FALSE(LoTighter(Lo(4, true), Lo(5, true)));
  EXPECT_TRUE(LoTighter(Lo(5, false), Lo(5, true)));   // exclusive starts later
  EXPECT_FALSE(LoTighter(Lo(5, true), Lo(5, false)));
  EXPECT_TRUE(LoTighter(Lo(5, true), kUnbounded));
  EXPECT_FALSE(LoTighter(kUnbounded, Lo(5, true)));

  EXPECT_TRUE(HiTighter(Hi(4, true), Hi(5, true)));
  EXPECT_TRUE(HiTighter(Hi(5, false), Hi(5, true)));   // exclusive ends earlier
  EXPECT_TRUE(HiTighter(Hi(5, true), kUnbounded));
}

TEST(IntervalMath, EmptyAndOverlap) {
  EXPECT_TRUE(IntervalEmpty({Lo(5, true), Hi(4, true)}));
  EXPECT_FALSE(IntervalEmpty({Lo(5, true), Hi(5, true)}));   // point
  EXPECT_TRUE(IntervalEmpty({Lo(5, false), Hi(5, true)}));
  EXPECT_TRUE(IntervalEmpty({Lo(5, true), Hi(5, false)}));
  EXPECT_FALSE(IntervalEmpty({kUnbounded, Hi(5, false)}));
  EXPECT_FALSE(IntervalEmpty({Lo(5, false), kUnbounded}));

  ColumnInterval a{Lo(0, true), Hi(10, true)};
  EXPECT_TRUE(Overlaps(a, {Lo(10, true), Hi(20, true)}));  // closed boundary
  EXPECT_FALSE(Overlaps(a, {Lo(10, false), Hi(20, true)}));
  EXPECT_TRUE(Overlaps(a, {kUnbounded, Hi(0, true)}));
}

TEST(IntervalMath, Complements) {
  RangeBound hi = ComplementHi(Lo(5, false));  // values up to and incl. 5
  EXPECT_TRUE(hi.inclusive);
  RangeBound lo = ComplementLo(Hi(5, true));   // values strictly above 5
  EXPECT_FALSE(lo.inclusive);
}

// ---------------------------------------------------------------------------
// Predicate decomposition
// ---------------------------------------------------------------------------

TEST(ExtractRangeSpecs, SingleColumnWithOthers) {
  ExprPtr pred = Expr::And(
      Expr::And(Expr::Gt(Expr::Column("x"), Expr::Literal(10.0)),
                Expr::Lt(Expr::Column("x"), Expr::Literal(50.0))),
      Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3})));
  auto specs = ExtractRangeSpecs(pred, nullptr);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].column, "x");
  EXPECT_FALSE(specs[0].range.lo.inclusive);
  EXPECT_EQ(DatumAsDouble(specs[0].range.lo.value), 10.0);
  EXPECT_EQ(DatumAsDouble(specs[0].range.hi.value), 50.0);
  ASSERT_EQ(specs[0].others.size(), 1u);
  EXPECT_EQ(specs[0].other_fps.size(), 1u);
}

TEST(ExtractRangeSpecs, TwoRangedColumnsYieldTwoSpecs) {
  // Each spec treats the OTHER column's range conjuncts as plain
  // fingerprint-matched conjuncts.
  ExprPtr pred = Expr::And(
      Expr::Ge(Expr::Column("x"), Expr::Literal(1.0)),
      Expr::Le(Expr::Column("y"), Expr::Literal(2.0)));
  auto specs = ExtractRangeSpecs(pred, nullptr);
  ASSERT_EQ(specs.size(), 2u);
  for (const auto& s : specs) {
    EXPECT_EQ(s.others.size(), 1u);
    EXPECT_EQ(s.other_fps.size(), 1u);
  }
}

TEST(ExtractRangeSpecs, MirroredLiteralAndContradiction) {
  // `5 < x` is a lower bound on x.
  auto specs = ExtractRangeSpecs(
      Expr::Lt(Expr::Literal(5.0), Expr::Column("x")), nullptr);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_FALSE(specs[0].range.lo.unbounded);
  EXPECT_TRUE(specs[0].range.hi.unbounded);

  // Contradictory range (x > 9 AND x < 1) produces no spec.
  specs = ExtractRangeSpecs(
      Expr::And(Expr::Gt(Expr::Column("x"), Expr::Literal(9.0)),
                Expr::Lt(Expr::Column("x"), Expr::Literal(1.0))),
      nullptr);
  EXPECT_TRUE(specs.empty());
}

// ---------------------------------------------------------------------------
// Interval index
// ---------------------------------------------------------------------------

TEST(IntervalIndexTest, OverlapLookupAndRemove) {
  // Standalone index with dummy nodes: only identity is used.
  RGNode n1, n2, n3;
  IntervalIndex index;
  index.Insert(7, "v", {&n1, {Lo(10, false), Hi(50, false)}, {}});
  index.Insert(7, "v", {&n2, {Lo(40, false), Hi(90, false)}, {}});
  index.Insert(7, "v", {&n3, {Lo(95, false), Hi(99, false)}, {}});
  index.Insert(8, "v", {&n1, {Lo(0, false), Hi(1, false)}, {}});
  EXPECT_EQ(index.num_entries(), 4);

  auto hits = index.Overlapping(7, "v", {Lo(30, false), Hi(80, false)});
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].node, &n1);  // ascending by lower bound
  EXPECT_EQ(hits[1].node, &n2);

  EXPECT_TRUE(index.Overlapping(7, "w", {Lo(30, false), Hi(80, false)})
                  .empty());
  EXPECT_TRUE(index.Overlapping(9, "v", {Lo(30, false), Hi(80, false)})
                  .empty());

  index.Remove(&n1);  // removes both registrations
  EXPECT_EQ(index.num_entries(), 2);
  hits = index.Overlapping(7, "v", {Lo(30, false), Hi(80, false)});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].node, &n2);
}

// ---------------------------------------------------------------------------
// Engine-level stitching
// ---------------------------------------------------------------------------

class PartialReuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"a", TypeId::kInt32},
              {"g", TypeId::kInt32},
              {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 20000; ++i) {
      t->AppendRow({int32_t{i % 97}, int32_t{i % 7},
                    static_cast<double>(i % 331)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  Recycler MakeRecycler(bool partial = true) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.enable_subsumption = true;
    cfg.enable_partial_reuse = partial;
    return Recycler(&catalog_, cfg);
  }

  static PlanPtr RangeQuery(double lo, double hi) {
    return PlanNode::Select(
        PlanNode::Scan("t", {"a", "g", "v"}),
        Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(lo)),
                  Expr::Lt(Expr::Column("v"), Expr::Literal(hi))));
  }

  std::multiset<std::string> RunOff(const PlanPtr& plan) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    return RowMultiset(*off.Execute(plan).table);
  }

  Catalog catalog_;
};

TEST_F(PartialReuseTest, StitchedRangeEqualsColdExecution) {
  Recycler rec = MakeRecycler();
  rec.Execute(RangeQuery(10, 50));  // cached slice
  ASSERT_GE(rec.graph().Stats().num_cached, 1);
  ASSERT_GE(rec.interval_index_entries(), 1);

  QueryTrace trace;
  ExecResult r = rec.Execute(RangeQuery(30, 80), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(trace.num_reuses, 1);
  EXPECT_EQ(rec.counters().partial_reuses.load(), 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(RangeQuery(30, 80)));
}

TEST_F(PartialReuseTest, DisabledFlagFallsBackToColdExecution) {
  Recycler rec = MakeRecycler(/*partial=*/false);
  rec.Execute(RangeQuery(10, 50));
  QueryTrace trace;
  ExecResult r = rec.Execute(RangeQuery(30, 80), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 0);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(RangeQuery(30, 80)));
}

TEST_F(PartialReuseTest, WorksWithSubsumptionDisabled) {
  // Partial stitching is gated by its own flag, independent of the
  // single-superset subsumption flag.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.enable_subsumption = false;
  cfg.enable_partial_reuse = true;
  Recycler rec(&catalog_, cfg);
  rec.Execute(RangeQuery(10, 50));
  QueryTrace trace;
  ExecResult r = rec.Execute(RangeQuery(30, 80), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(trace.num_subsumption_reuses, 0);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(RangeQuery(30, 80)));
}

TEST_F(PartialReuseTest, LimitOverStitchedSelectReturnsValidRows) {
  // A stitched union is a BAG: branch order differs from cold execution
  // (cached slices stream before delta scans), so an order-sensitive
  // parent without a sort — Limit without OrderBy — may surface
  // different, equally valid, qualifying rows. This pins the contract:
  // right row count, every row drawn from the selection's result.
  Recycler rec = MakeRecycler();
  rec.Execute(RangeQuery(10, 50));

  PlanPtr q = PlanNode::Limit(RangeQuery(30, 80), 5);
  QueryTrace trace;
  ExecResult r = rec.Execute(q, &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  ASSERT_EQ(r.table->num_rows(), 5);
  std::multiset<std::string> all = RunOff(RangeQuery(30, 80));
  for (int64_t i = 0; i < r.table->num_rows(); ++i) {
    EXPECT_TRUE(all.count(recycledb::testing::RowKey(*r.table, i)) > 0);
  }
}

TEST_F(PartialReuseTest, DeltaScanReusesCachedChildResult) {
  // When the stitched node's child is itself cached, the delta scans
  // must read the cached child instead of re-executing the child
  // subtree (stitching must not preempt the reuse the plain miss path
  // would have gotten).
  static std::atomic<int64_t> calls{0};
  static const Schema kFnSchema({{"a", TypeId::kInt32},
                                 {"g", TypeId::kInt32},
                                 {"v", TypeId::kDouble}});
  TableFunction fn;
  fn.name = "counting_rows_delta";
  fn.schema_fn = [](const std::vector<Datum>&) { return kFnSchema; };
  fn.base_tables = {"t"};
  fn.eval_fn = [](const Catalog& catalog, const std::vector<Datum>&) {
    calls.fetch_add(1);
    TablePtr src = catalog.GetTable("t");
    TablePtr out = MakeTable(kFnSchema);
    for (int64_t i = 0; i < src->num_rows(); ++i) {
      out->AppendRow({src->Get(i, 0), src->Get(i, 1), src->Get(i, 2)});
    }
    return out;
  };
  TableFunctionRegistry::Global().Register(fn);

  auto fn_range = [](ExprPtr pred) {
    return PlanNode::Select(
        PlanNode::FunctionScan("counting_rows_delta", {}), std::move(pred));
  };
  ExprPtr qpred =
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(10.0)),
                Expr::Lt(Expr::Column("v"), Expr::Literal(90.0)));
  std::multiset<std::string> expect;
  {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    expect = RowMultiset(*off.Execute(fn_range(qpred)).table);
  }

  Recycler rec = MakeRecycler();
  // Seeds the slice (10, 40) AND caches the function-scan child itself
  // (function scans are speculation targets).
  rec.Execute(fn_range(Expr::And(
      Expr::Gt(Expr::Column("v"), Expr::Literal(10.0)),
      Expr::Lt(Expr::Column("v"), Expr::Literal(40.0)))));

  int64_t calls_before = calls.load();
  QueryTrace trace;
  ExecResult r = rec.Execute(fn_range(qpred), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(trace.num_reuses, 2);  // the stitch + the child in the delta
  EXPECT_EQ(calls.load(), calls_before);  // delta read the cached child
  EXPECT_EQ(RowMultiset(*r.table), expect);
}

TEST_F(PartialReuseTest, MultiGapRemainderExecutesChildOnce) {
  // A cached middle slice leaves gaps on BOTH sides; the gaps must merge
  // into one delta scan (a disjunction of ranges), so an uncached child
  // executes exactly once, not once per gap.
  static std::atomic<int64_t> calls{0};
  static const Schema kFnSchema({{"a", TypeId::kInt32},
                                 {"g", TypeId::kInt32},
                                 {"v", TypeId::kDouble}});
  TableFunction fn;
  fn.name = "counting_rows_gaps";
  fn.schema_fn = [](const std::vector<Datum>&) { return kFnSchema; };
  fn.base_tables = {"t"};
  fn.eval_fn = [](const Catalog& catalog, const std::vector<Datum>&) {
    calls.fetch_add(1);
    TablePtr src = catalog.GetTable("t");
    TablePtr out = MakeTable(kFnSchema);
    for (int64_t i = 0; i < src->num_rows(); ++i) {
      out->AppendRow({src->Get(i, 0), src->Get(i, 1), src->Get(i, 2)});
    }
    return out;
  };
  TableFunctionRegistry::Global().Register(fn);

  auto fn_range = [](double lo, double hi) {
    return PlanNode::Select(
        PlanNode::FunctionScan("counting_rows_gaps", {}),
        Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(lo)),
                  Expr::Lt(Expr::Column("v"), Expr::Literal(hi))));
  };
  std::multiset<std::string> expect;
  {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    expect = RowMultiset(*off.Execute(fn_range(10, 90)).table);
  }

  // HIST mode: no speculation, so the function-scan child itself never
  // gets cached; the second seed run caches only the middle slice.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(fn_range(40, 60));
  rec.Execute(fn_range(40, 60));
  ASSERT_GE(rec.interval_index_entries(), 1);

  int64_t calls_before = calls.load();
  QueryTrace trace;
  ExecResult r = rec.Execute(fn_range(10, 90), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(calls.load(), calls_before + 1);  // one delta, two gaps
  EXPECT_EQ(RowMultiset(*r.table), expect);
}

TEST_F(PartialReuseTest, BoundaryEqualityDedup) {
  // Two cached slices that share the boundary value 50 (both closed at
  // it): stitching must emit rows with v == 50 exactly once.
  Recycler rec = MakeRecycler();
  rec.Execute(PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::Le(Expr::Column("v"), Expr::Literal(50.0))));
  rec.Execute(PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::Ge(Expr::Column("v"), Expr::Literal(50.0))));
  ASSERT_GE(rec.interval_index_entries(), 2);

  QueryTrace trace;
  ExecResult r = rec.Execute(RangeQuery(30, 80), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(RangeQuery(30, 80)));
}

TEST_F(PartialReuseTest, OpenEndedIntervals) {
  // Cached one-sided slice v > 50 fully covers the query 60 < v <= 90.
  Recycler rec = MakeRecycler();
  rec.Execute(PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::Gt(Expr::Column("v"), Expr::Literal(50.0))));

  PlanPtr q = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(60.0)),
                Expr::Le(Expr::Column("v"), Expr::Literal(90.0))));
  PlanPtr q2 = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(60.0)),
                Expr::Le(Expr::Column("v"), Expr::Literal(90.0))));
  QueryTrace trace;
  ExecResult r = rec.Execute(q, &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(q2));

  // Open-ended query over the open-ended slice (v > 55 from v > 50).
  PlanPtr open = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::Gt(Expr::Column("v"), Expr::Literal(55.0)));
  PlanPtr open2 = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::Gt(Expr::Column("v"), Expr::Literal(55.0)));
  r = rec.Execute(open, &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(open2));
}

TEST_F(PartialReuseTest, ResidualConjunctCompensation) {
  // The cached slice lacks the query's g = 3 filter; the stitcher must
  // apply it as compensation on the reused piece.
  Recycler rec = MakeRecycler();
  rec.Execute(RangeQuery(10, 90));

  PlanPtr q = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::And(Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(30.0)),
                          Expr::Lt(Expr::Column("v"), Expr::Literal(80.0))),
                Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  PlanPtr q2 = PlanNode::Select(
      PlanNode::Scan("t", {"a", "g", "v"}),
      Expr::And(Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(30.0)),
                          Expr::Lt(Expr::Column("v"), Expr::Literal(80.0))),
                Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  QueryTrace trace;
  ExecResult r = rec.Execute(q, &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(q2));
}

TEST_F(PartialReuseTest, FullCoverByTwoSlicesSkipsChildExecution) {
  // Child is a counting table function: when the union of two cached
  // slices covers the query range completely (empty remainder), the
  // stitched plan has no delta scan and the child must not run.
  static std::atomic<int64_t> calls{0};
  static const Schema kFnSchema({{"a", TypeId::kInt32},
                                 {"g", TypeId::kInt32},
                                 {"v", TypeId::kDouble}});
  TableFunction fn;
  fn.name = "counting_rows";
  fn.schema_fn = [](const std::vector<Datum>&) { return kFnSchema; };
  fn.base_tables = {"t"};
  fn.eval_fn = [](const Catalog& catalog, const std::vector<Datum>&) {
    calls.fetch_add(1);
    TablePtr src = catalog.GetTable("t");
    TablePtr out = MakeTable(kFnSchema);
    for (int64_t i = 0; i < src->num_rows(); ++i) {
      out->AppendRow({src->Get(i, 0), src->Get(i, 1), src->Get(i, 2)});
    }
    return out;
  };
  TableFunctionRegistry::Global().Register(fn);

  auto fn_range = [](ExprPtr pred) {
    return PlanNode::Select(PlanNode::FunctionScan("counting_rows", {}),
                            std::move(pred));
  };

  Recycler rec = MakeRecycler();
  rec.Execute(fn_range(Expr::Lt(Expr::Column("v"), Expr::Literal(40.0))));
  rec.Execute(fn_range(Expr::Ge(Expr::Column("v"), Expr::Literal(40.0))));
  ASSERT_GE(rec.interval_index_entries(), 2);

  ExprPtr qpred =
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(10.0)),
                Expr::Lt(Expr::Column("v"), Expr::Literal(90.0)));
  std::multiset<std::string> expect;
  {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    expect = RowMultiset(*off.Execute(fn_range(qpred)).table);
  }

  int64_t calls_before = calls.load();
  QueryTrace trace;
  ExecResult r = rec.Execute(fn_range(qpred), &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(calls.load(), calls_before);  // empty remainder: no delta scan
  EXPECT_EQ(RowMultiset(*r.table), expect);
}

TEST_F(PartialReuseTest, StitchedResultIsAdmittedAndWidensCoverage) {
  Recycler rec = MakeRecycler();
  rec.Execute(RangeQuery(10, 50));
  int64_t cached_before = rec.graph().Stats().num_cached;

  // Stitched query: reuse piece (30, 50) + delta scan [50, 80). Its own
  // result is admitted (stitched-admission policy)...
  QueryTrace trace;
  rec.Execute(RangeQuery(30, 80), &trace);
  ASSERT_EQ(trace.num_partial_reuses, 1);
  EXPECT_GT(rec.graph().Stats().num_cached, cached_before);

  // ...so a third query inside (30, 80) is now fully covered by the
  // stitched result: partial reuse again, with no delta remainder.
  PlanPtr q = RangeQuery(35, 75);
  PlanPtr q2 = RangeQuery(35, 75);
  ExecResult r = rec.Execute(q, &trace);
  EXPECT_EQ(trace.num_partial_reuses, 1);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(q2));
}

TEST_F(PartialReuseTest, InvalidateTableEvictsStitchedAndSlices) {
  Recycler rec = MakeRecycler();
  rec.Execute(RangeQuery(10, 50));
  QueryTrace trace;
  rec.Execute(RangeQuery(30, 80), &trace);
  ASSERT_EQ(trace.num_partial_reuses, 1);
  ASSERT_GE(rec.interval_index_entries(), 1);

  rec.InvalidateTable("t");
  EXPECT_EQ(rec.interval_index_entries(), 0);
  EXPECT_EQ(rec.graph().Stats().num_cached, 0);

  // Nothing left to stitch from: the rerun is a cold execution and must
  // still be correct.
  PlanPtr q = RangeQuery(30, 80);
  PlanPtr q2 = RangeQuery(30, 80);
  ExecResult r = rec.Execute(q, &trace);
  EXPECT_EQ(trace.num_reuses, 0);
  EXPECT_EQ(RowMultiset(*r.table), RunOff(q2));
}

TEST_F(PartialReuseTest, ApiSurfacesPartialHitStats) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  ASSERT_TRUE(db->CreateTable("t", catalog_.GetTable("t")).ok());
  auto session = db->Connect({});

  Status st;
  Query q = db->Scan("t", {"a", "g", "v"})
                .Filter(Expr::And(
                    Expr::Gt(Expr::Column("v"), Expr::Param("lo")),
                    Expr::Lt(Expr::Column("v"), Expr::Param("hi"))));
  auto stmt = session->Prepare(q, &st);
  ASSERT_TRUE(st.ok());

  Result seed = stmt->Execute({{"lo", 10.0}, {"hi", 50.0}});
  ASSERT_TRUE(seed.ok());
  Result hit = stmt->Execute({{"lo", 30.0}, {"hi", 80.0}});
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.partial_reuses(), 1);
  EXPECT_TRUE(hit.recycled());

  EXPECT_EQ(session->stats().partial_reuses, 1);
  TemplateStats ts = db->StatsForTemplate(stmt->template_hash());
  EXPECT_EQ(ts.partial_reuses, 1);
}

TEST_F(PartialReuseTest, ConcurrentOverlappingRangesStayCorrect) {
  // Overlapping range streams against one recycler: every result must
  // equal its cold execution regardless of stitching/admission races.
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  ASSERT_TRUE(db->CreateTable("t", catalog_.GetTable("t")).ok());

  constexpr int kThreads = 4;
  constexpr int kQueries = 12;
  std::vector<std::multiset<std::string>> expected;
  std::vector<std::pair<double, double>> ranges;
  for (int i = 0; i < kQueries; ++i) {
    double lo = 5.0 * i;
    double hi = lo + 60.0;
    ranges.emplace_back(lo, hi);
    expected.push_back(RunOff(RangeQuery(lo, hi)));
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db->Connect({});
      for (int i = 0; i < kQueries; ++i) {
        int pick = (i + t) % kQueries;
        Result r = session->Execute(
            RangeQuery(ranges[pick].first, ranges[pick].second));
        if (!r.ok() || RowMultiset(*r.table()) != expected[pick]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace recycledb
