// Tests for the MonetDB-style operator-at-a-time keep-all baseline.
#include <gtest/gtest.h>

#include "baseline/keepall.h"
#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

class KeepAllTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 10000; ++i) {
      t->AppendRow({int32_t{i % 64}, static_cast<double>(i)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  PlanPtr AggPlan(int64_t threshold) {
    return PlanNode::Aggregate(
        PlanNode::Select(
            PlanNode::Scan("t", {"k", "v"}),
            Expr::Gt(Expr::Column("k"), Expr::Literal(threshold))),
        {"k"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  }

  Catalog catalog_;
};

TEST_F(KeepAllTest, MatchesPipelinedResults) {
  KeepAllEngine keepall(&catalog_, {});
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  Recycler off(&catalog_, cfg);
  PlanPtr a = AggPlan(10), b = AggPlan(10);
  TablePtr r1 = keepall.Execute(a);
  TablePtr r2 = off.Execute(b).table;
  EXPECT_EQ(recycledb::testing::RowMultiset(*r1),
            recycledb::testing::RowMultiset(*r2));
}

TEST_F(KeepAllTest, CachesEveryIntermediate) {
  KeepAllEngine keepall(&catalog_, {});
  keepall.Execute(AggPlan(10));
  KeepAllStats s = keepall.stats();
  // Scan + select + aggregate all cached (the MonetDB property).
  EXPECT_EQ(s.cached_entries, 3);
  EXPECT_EQ(s.node_misses, 3);
  EXPECT_EQ(s.node_hits, 0);
}

TEST_F(KeepAllTest, ReusesFromFirstComputation) {
  KeepAllEngine keepall(&catalog_, {});
  keepall.Execute(AggPlan(10));
  keepall.Execute(AggPlan(10));  // second run: full hit at the root
  KeepAllStats s = keepall.stats();
  EXPECT_GE(s.node_hits, 1);
  EXPECT_EQ(s.node_misses, 3);  // nothing recomputed
}

TEST_F(KeepAllTest, SharedScanAcrossDifferentQueries) {
  KeepAllEngine keepall(&catalog_, {});
  keepall.Execute(AggPlan(10));
  keepall.Execute(AggPlan(20));  // shares the scan intermediate
  KeepAllStats s = keepall.stats();
  EXPECT_GE(s.node_hits, 1);     // the scan
  EXPECT_EQ(s.node_misses, 5);   // 3 + new select + new agg
}

TEST_F(KeepAllTest, FootprintMuchLargerThanPipelinedRecycler) {
  // The keep-all cache holds full scan copies; the pipelined recycler
  // holds only the selected small results (the Fig. 6 footprint story).
  KeepAllEngine keepall(&catalog_, {});
  keepall.Execute(AggPlan(10));
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  EXPECT_GT(keepall.stats().cached_bytes,
            4 * rec.graph().Stats().cached_bytes);
}

TEST_F(KeepAllTest, BoundedCacheEvictsByBenefit) {
  // Budget fits the scan copy OR a select copy, but not both: the second
  // query's intermediates must push something out.
  KeepAllEngine::Config cfg;
  cfg.cache_bytes = 192 << 10;
  KeepAllEngine keepall(&catalog_, cfg);
  keepall.Execute(AggPlan(10));
  keepall.Execute(AggPlan(20));
  KeepAllStats s = keepall.stats();
  EXPECT_LE(s.cached_bytes, 192 << 10);
  EXPECT_GE(s.evictions, 1);
}

TEST_F(KeepAllTest, OversizedIntermediatesAreSkippedNotFatal) {
  KeepAllEngine::Config cfg;
  cfg.cache_bytes = 1 << 10;  // smaller than the scan/select copies
  KeepAllEngine keepall(&catalog_, cfg);
  TablePtr r = keepall.Execute(AggPlan(10));
  EXPECT_GT(r->num_rows(), 0);
  // Only the tiny aggregate result can fit; the big copies are skipped.
  EXPECT_LE(keepall.stats().cached_bytes, 1 << 10);
  EXPECT_LE(keepall.stats().cached_entries, 1);
}

TEST_F(KeepAllTest, RecyclingOffIsNaive) {
  KeepAllEngine::Config cfg;
  cfg.recycling = false;
  KeepAllEngine naive(&catalog_, cfg);
  naive.Execute(AggPlan(10));
  naive.Execute(AggPlan(10));
  KeepAllStats s = naive.stats();
  EXPECT_EQ(s.node_hits, 0);
  EXPECT_EQ(s.cached_entries, 0);
}

TEST_F(KeepAllTest, FlushForcesRecomputation) {
  KeepAllEngine keepall(&catalog_, {});
  keepall.Execute(AggPlan(10));
  keepall.FlushCache();
  keepall.Execute(AggPlan(10));
  EXPECT_EQ(keepall.stats().node_misses, 6);
}

}  // namespace
}  // namespace recycledb
