// End-to-end TPC-H tests: dbgen sanity, all 22 plans execute, and the key
// system invariant — every recycler mode returns the same results as OFF.
#include <gtest/gtest.h>

#include "recycler/recycler.h"
#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "tpch/queries.h"
#include "test_util.h"

namespace recycledb {
namespace {

constexpr double kTestSf = 0.005;

// One shared tiny database for the whole file (generation is the slow part).
class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Runs once per test suite, and TpchModeEquivalence inherits this
    // fixture: guard so the derived suite reuses (rather than leaks) the
    // database generated for the base suite.
    if (catalog_ == nullptr) {
      catalog_ = new Catalog();
      tpch::Generate(kTestSf, catalog_);
    }
  }
  static Catalog* catalog_;
};
Catalog* TpchTest::catalog_ = nullptr;

TEST_F(TpchTest, DbgenCardinalities) {
  EXPECT_EQ(catalog_->GetTable("region")->num_rows(), 5);
  EXPECT_EQ(catalog_->GetTable("nation")->num_rows(), 25);
  int64_t suppliers = catalog_->GetTable("supplier")->num_rows();
  int64_t parts = catalog_->GetTable("part")->num_rows();
  EXPECT_EQ(catalog_->GetTable("partsupp")->num_rows(), parts * 4);
  int64_t orders = catalog_->GetTable("orders")->num_rows();
  int64_t lineitem = catalog_->GetTable("lineitem")->num_rows();
  EXPECT_GT(suppliers, 0);
  EXPECT_GT(orders, 0);
  // ~4 lineitems per order on average (uniform 1..7).
  EXPECT_GT(lineitem, orders * 2);
  EXPECT_LT(lineitem, orders * 7);
}

TEST_F(TpchTest, DbgenDateRules) {
  TablePtr l = catalog_->GetTable("lineitem");
  TablePtr o = catalog_->GetTable("orders");
  const int32_t* od = o->ColumnByName("o_orderdate")->Raw<int32_t>();
  for (int64_t i = 0; i < o->num_rows(); ++i) {
    EXPECT_GE(od[i], MakeDate(1992, 1, 1));
    EXPECT_LE(od[i], MakeDate(1998, 8, 2));
  }
  const int32_t* ship = l->ColumnByName("l_shipdate")->Raw<int32_t>();
  const int32_t* receipt = l->ColumnByName("l_receiptdate")->Raw<int32_t>();
  for (int64_t i = 0; i < l->num_rows(); ++i) {
    EXPECT_GT(receipt[i], ship[i]);
    EXPECT_LE(receipt[i] - ship[i], 30);
  }
}

TEST_F(TpchTest, DbgenValueDomains) {
  TablePtr l = catalog_->GetTable("lineitem");
  const double* qty = l->ColumnByName("l_quantity")->Raw<double>();
  const double* disc = l->ColumnByName("l_discount")->Raw<double>();
  const std::string* flag = l->ColumnByName("l_returnflag")->Raw<std::string>();
  for (int64_t i = 0; i < l->num_rows(); ++i) {
    EXPECT_GE(qty[i], 1);
    EXPECT_LE(qty[i], 50);
    EXPECT_GE(disc[i], 0.0);
    EXPECT_LE(disc[i], 0.10 + 1e-9);
    EXPECT_TRUE(flag[i] == "R" || flag[i] == "A" || flag[i] == "N");
  }
}

TEST_F(TpchTest, DbgenDeterministic) {
  Catalog other;
  tpch::Generate(kTestSf, &other);
  TablePtr a = catalog_->GetTable("orders");
  TablePtr b = other.GetTable("orders");
  ASSERT_EQ(a->num_rows(), b->num_rows());
  for (int64_t r = 0; r < std::min<int64_t>(a->num_rows(), 200); ++r) {
    EXPECT_EQ(recycledb::testing::RowKey(*a, r),
              recycledb::testing::RowKey(*b, r));
  }
}

// Every query pattern binds and executes with recycling off.
TEST_F(TpchTest, AllQueriesExecuteOff) {
  Rng rng(7);
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  Recycler off(catalog_, cfg);
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    SCOPED_TRACE("Q" + std::to_string(q));
    tpch::QueryParams p = tpch::GenerateParams(q, &rng, kTestSf);
    PlanPtr plan = tpch::BuildQuery(q, p, kTestSf);
    ExecResult r = off.Execute(plan);
    ASSERT_NE(r.table, nullptr);
  }
}

// Whether top-N cut ties make full-row comparison unsafe for a pattern.
bool IsTopNQuery(int q) {
  return q == 2 || q == 3 || q == 10 || q == 18 || q == 21;
}

class TpchModeEquivalence
    : public TpchTest,
      public ::testing::WithParamInterface<RecyclerMode> {};

// The central correctness property: recycling must be transparent.
// Run the same parameterized workload twice per mode (so reuse actually
// triggers) and compare every result against the OFF run.
TEST_P(TpchModeEquivalence, SameResultsAsOff) {
  RecyclerMode mode = GetParam();
  RecyclerConfig off_cfg;
  off_cfg.mode = RecyclerMode::kOff;
  Recycler off(catalog_, off_cfg);

  RecyclerConfig on_cfg;
  on_cfg.mode = mode;
  on_cfg.cache_bytes = 64ll << 20;
  Recycler on(catalog_, on_cfg);

  for (int round = 0; round < 2; ++round) {
    Rng rng(42);  // identical parameters both rounds => reuse on round 2
    for (int q = 1; q <= tpch::kNumQueries; ++q) {
      SCOPED_TRACE("round " + std::to_string(round) + " Q" + std::to_string(q));
      tpch::QueryParams p = tpch::GenerateParams(q, &rng, kTestSf);
      PlanPtr plan_off = tpch::BuildQuery(q, p, kTestSf);
      PlanPtr plan_on = tpch::BuildQuery(q, p, kTestSf);
      ExecResult r_off = off.Execute(plan_off);
      ExecResult r_on = on.Execute(plan_on);
      ASSERT_EQ(r_off.table->num_rows(), r_on.table->num_rows());
      if (IsTopNQuery(q)) {
        // Compare the ordering keys only (cut-boundary ties are free).
        std::vector<std::string> keys;
        for (const auto& k : plan_off->sort_keys()) keys.push_back(k.column);
        EXPECT_EQ(recycledb::testing::ColumnMultiset(*r_off.table, keys),
                  recycledb::testing::ColumnMultiset(*r_on.table, keys));
      } else {
        EXPECT_EQ(recycledb::testing::RowMultiset(*r_off.table),
                  recycledb::testing::RowMultiset(*r_on.table));
      }
    }
  }
  EXPECT_GT(on.counters().reuses.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Modes, TpchModeEquivalence,
                         ::testing::Values(RecyclerMode::kHistory,
                                           RecyclerMode::kSpeculation,
                                           RecyclerMode::kProactive),
                         [](const auto& info) {
                           return RecyclerModeName(info.param);
                         });

// Repeating the same query must get faster (reuse) and count a reuse.
TEST_F(TpchTest, RepeatReusesFinalResult) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(catalog_, cfg);
  Rng rng(3);
  tpch::QueryParams p = tpch::GenerateParams(1, &rng, kTestSf);
  PlanPtr plan1 = tpch::BuildQuery(1, p, kTestSf);
  PlanPtr plan2 = tpch::BuildQuery(1, p, kTestSf);
  QueryTrace t1, t2;
  rec.Execute(plan1, &t1);
  rec.Execute(plan2, &t2);
  EXPECT_GE(t1.num_materialized, 1);  // speculation stores the final result
  EXPECT_GE(t2.num_reuses, 1);
}

}  // namespace
}  // namespace recycledb
