// Tests for recycler-graph truncation (§II: "the recycler graph has to be
// truncated periodically ... e.g. by periodically removing subtrees that
// have not been accessed for some time").
#include <gtest/gtest.h>

#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

class TruncationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 5000; ++i) {
      t->AppendRow({int32_t{i % 40}, static_cast<double>(i)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  PlanPtr AggPlan(int64_t threshold) {
    return PlanNode::Aggregate(
        PlanNode::Select(
            PlanNode::Scan("t", {"k", "v"}),
            Expr::Gt(Expr::Column("k"), Expr::Literal(threshold))),
        {"k"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  }

  Catalog catalog_;
};

TEST_F(TruncationTest, RemovesIdleSubtreesKeepsFresh) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(1));  // becomes stale
  // 10 fresh queries advance the epoch and keep their own nodes fresh.
  for (int i = 0; i < 10; ++i) rec.Execute(AggPlan(2));
  int64_t before = rec.graph().Stats().num_nodes;  // scan + 2x(sel+agg)
  EXPECT_EQ(before, 5);
  int64_t removed = rec.TruncateGraph(/*idle_epochs=*/5);
  // The stale select+agg chain goes; the shared scan stays (fresh parent).
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(rec.graph().Stats().num_nodes, 3);
}

TEST_F(TruncationTest, SharedPrefixSurvivesWhileAnyParentIsFresh) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(1));
  for (int i = 0; i < 10; ++i) rec.Execute(AggPlan(2));
  rec.TruncateGraph(5);
  // The scan leaf must still match: re-running the stale query only
  // re-inserts its own chain.
  int64_t nodes = rec.graph().Stats().num_nodes;
  rec.Execute(AggPlan(1));
  EXPECT_EQ(rec.graph().Stats().num_nodes, nodes + 2);
}

TEST_F(TruncationTest, CachedNodesAreNeverTruncated) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(1));  // speculation caches the aggregate
  ASSERT_GE(rec.graph().Stats().num_cached, 1);
  for (int i = 0; i < 10; ++i) rec.Execute(AggPlan(2));
  rec.TruncateGraph(5);
  // The cached aggregate (and, through it, its subtree's scan) survive.
  EXPECT_GE(rec.graph().Stats().num_cached, 1);
  QueryTrace trace;
  rec.Execute(AggPlan(1), &trace);
  EXPECT_GE(trace.num_reuses, 1);  // still reusable after truncation
}

TEST_F(TruncationTest, MatchingStillCorrectAfterTruncation) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  RecyclerConfig off_cfg;
  off_cfg.mode = RecyclerMode::kOff;
  Recycler off(&catalog_, off_cfg);
  for (int round = 0; round < 3; ++round) {
    for (int64_t p = 0; p < 6; ++p) {
      ExecResult a = rec.Execute(AggPlan(p));
      ExecResult b = off.Execute(AggPlan(p));
      EXPECT_EQ(recycledb::testing::RowMultiset(*a.table),
                recycledb::testing::RowMultiset(*b.table));
    }
    rec.TruncateGraph(3);
  }
}

TEST_F(TruncationTest, TruncateEverythingIdle) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;
  Recycler rec(&catalog_, cfg);
  for (int64_t p = 0; p < 5; ++p) rec.Execute(AggPlan(p));
  EXPECT_GT(rec.graph().Stats().num_nodes, 0);
  // Advance the epoch well past everything, then truncate with 0 idle.
  for (int i = 0; i < 3; ++i) rec.graph().AdvanceEpoch();
  int64_t removed = rec.TruncateGraph(1);
  EXPECT_EQ(rec.graph().Stats().num_nodes, 0);
  EXPECT_GT(removed, 0);
}

}  // namespace
}  // namespace recycledb
