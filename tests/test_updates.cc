// Tests for update handling: evicting dependents on commit (§II's
// proposed approach, which this system implements) and correctness of
// results after base-table replacement.
#include <gtest/gtest.h>

#include <thread>

#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterVersion(1);
  }

  /// (Re-)registers table "t" whose contents depend on `version`, so a
  /// stale cached result is detectably wrong.
  void RegisterVersion(int version) {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 4000; ++i) {
      t->AppendRow({int32_t{i % 20},
                    static_cast<double>(i % 100) * version});
    }
    if (catalog_.HasTable("t")) {
      ASSERT_TRUE(catalog_.ReplaceTable("t", t).ok());
    } else {
      ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
    }
  }

  PlanPtr SumPlan() {
    return PlanNode::Aggregate(
        PlanNode::Scan("t", {"k", "v"}), {"k"},
        {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  }

  Catalog catalog_;
};

TEST_F(UpdateTest, StaleResultsEvictedOnCommit) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  ExecResult before = rec.Execute(SumPlan());

  // Simulated transaction commit: replace the table, evict dependents.
  RegisterVersion(2);
  rec.InvalidateTable("t");

  QueryTrace trace;
  ExecResult after = rec.Execute(SumPlan(), &trace);
  EXPECT_EQ(trace.num_reuses, 0);  // the stale result is gone
  // Values doubled: the result must reflect the new table.
  double sum_before = 0, sum_after = 0;
  for (int64_t r = 0; r < before.table->num_rows(); ++r) {
    sum_before += std::get<double>(before.table->Get(r, 1));
    sum_after += std::get<double>(after.table->Get(r, 1));
  }
  EXPECT_DOUBLE_EQ(sum_after, 2 * sum_before);
}

TEST_F(UpdateTest, ReplacedTableDetectedByVersionStamps) {
  // Delta-maintenance stamps record the replace-epoch a result was
  // computed at, so even WITHOUT the explicit invalidation hook a
  // replaced table is detected at lookup time: the stale entry is
  // dropped instead of served, and the query re-executes fresh.
  // (InvalidateTable remains the eager commit hook; the stamp check is
  // the lookup-time backstop.)
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  ExecResult before = rec.Execute(SumPlan());
  RegisterVersion(2);
  QueryTrace trace;
  ExecResult after = rec.Execute(SumPlan(), &trace);
  EXPECT_EQ(trace.num_reuses, 0);  // stale entry refused, not served
  double sum_before = 0, sum_after = 0;
  for (int64_t r = 0; r < before.table->num_rows(); ++r) {
    sum_before += std::get<double>(before.table->Get(r, 1));
    sum_after += std::get<double>(after.table->Get(r, 1));
  }
  EXPECT_DOUBLE_EQ(sum_after, 2 * sum_before);
}

TEST_F(UpdateTest, InvalidationOnlyHitsDependents) {
  Schema s({{"x", TypeId::kInt32}});
  TablePtr other = MakeTable(s);
  for (int i = 0; i < 1000; ++i) other->AppendRow({int32_t{i}});
  ASSERT_TRUE(catalog_.RegisterTable("other", other).ok());

  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(SumPlan());
  rec.Execute(PlanNode::Aggregate(
      PlanNode::Scan("other", {"x"}), {},
      {{AggFunc::kMax, Expr::Column("x"), "mx"}}));
  int64_t cached = rec.graph().Stats().num_cached;
  ASSERT_GE(cached, 2);
  rec.InvalidateTable("t");
  // Results over "other" survive.
  QueryTrace trace;
  rec.Execute(PlanNode::Aggregate(
                  PlanNode::Scan("other", {"x"}), {},
                  {{AggFunc::kMax, Expr::Column("x"), "mx"}}),
              &trace);
  EXPECT_GE(trace.num_reuses, 1);
}

TEST_F(UpdateTest, ConcurrentQueriesAndInvalidationsStaySane) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  ExecResult reference = rec.Execute(SumPlan());
  auto expected = recycledb::testing::RowMultiset(*reference.table);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load()) {
      rec.InvalidateTable("t");
      std::this_thread::yield();
    }
  });
  bool all_ok = true;
  for (int i = 0; i < 50; ++i) {
    ExecResult r = rec.Execute(SumPlan());
    all_ok = all_ok &&
             recycledb::testing::RowMultiset(*r.table) == expected;
  }
  stop.store(true);
  invalidator.join();
  EXPECT_TRUE(all_ok);
}

}  // namespace
}  // namespace recycledb
