// Delta maintenance tests: cached results kept valid under appends by
// stitching the cached prefix with a bounded scan of the appended window
// (or merging cached aggregate state with a delta-window aggregate).
// Results served through the delta path must be bit-identical to a
// recycler-bypass re-execution; the aggregate-merge path must touch zero
// base-table blocks before the cached high-water mark.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "common/string_util.h"
#include "test_util.h"
#include "workload/rollup.h"

namespace recycledb {
namespace {

/// Exact row rendering (doubles at full precision: these tests assert
/// bit-identity, not approximate equality). The scenario generators use
/// integer-valued doubles, so partial-sum merging stays exact.
std::vector<std::string> BitRows(const Table& t, bool ordered) {
  std::vector<std::string> rows;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (int c = 0; c < t.num_columns(); ++c) {
      const Datum& d = t.Get(r, c);
      if (std::holds_alternative<double>(d)) {
        key += StrFormat("%.17g", std::get<double>(d));
      } else {
        key += DatumToString(d);
      }
      key += "|";
    }
    rows.push_back(std::move(key));
  }
  if (!ordered) std::sort(rows.begin(), rows.end());
  return rows;
}

DatabaseOptions DeltaOptions(bool delta_on = true) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.enable_delta_maintenance = delta_on;
  return options;
}

/// Ground truth: the same statement through a recycler-bypass session.
std::vector<std::string> Truth(Database* db, const std::string& sql,
                               bool ordered) {
  SessionOptions bypass;
  bypass.bypass_recycler = true;
  auto session = db->Connect(bypass);
  Result r = session->Sql(sql);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return BitRows(*r.table(), ordered);
}

TEST(DeltaTest, AggMergeSumCountAvgBitIdenticalZeroRescan) {
  auto db = Database::OpenOrDie(DeltaOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = 8192;  // 8 zone-map blocks
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  const std::string q =
      "SELECT sensor, SUM(value) AS total, COUNT(value) AS n,"
      " AVG(value) AS mean FROM events GROUP BY sensor";

  Result seed = db->Sql(q);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  EXPECT_GE(seed.trace().blocks_scanned, 8);

  // Three append/query rounds: the refreshed result re-admits at the new
  // high-water mark, so every round merges only its own delta window.
  int64_t rows = ropt.initial_rows;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        db->AppendTable("events", *rollup::MakeBatch(512, rows, ropt)).ok());
    rows += 512;
    Result merged = db->Sql(q);
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    EXPECT_EQ(merged.delta_reuses(), 1) << "round " << round;
    EXPECT_EQ(merged.agg_merges(), 1) << "round " << round;
    // Zero base rescans: one block for the cached aggregate-state view
    // (CachedScan runs on the ScanOp machinery) plus the sub-block delta
    // window — never the 8+ base blocks below the cached mark.
    EXPECT_LE(merged.trace().blocks_scanned, 2) << "round " << round;
    EXPECT_LT(merged.trace().blocks_scanned, seed.trace().blocks_scanned);
    EXPECT_EQ(BitRows(*merged.table(), false), Truth(db.get(), q, false));
  }
  EXPECT_GE(db->counters().delta_hits.load(), 3);
  EXPECT_GE(db->counters().agg_merges.load(), 3);
}

TEST(DeltaTest, GroupedMinMaxDuplicateExtremes) {
  auto db = Database::OpenOrDie(DeltaOptions());
  Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 2000; ++i) {
    t->AppendRow({int32_t{i % 2}, static_cast<double>(i % 500)});
  }
  ASSERT_TRUE(db->CreateTable("m", t).ok());
  const std::string q =
      "SELECT k, MIN(v) AS lo, MAX(v) AS hi FROM m GROUP BY k";
  ASSERT_TRUE(db->Sql(q).ok());

  // Delta duplicates both extremes of group 0 (merge must not double
  // them away) and pushes a new maximum for group 1.
  TablePtr delta = MakeTable(s);
  delta->AppendRow({int32_t{0}, 0.0});
  delta->AppendRow({int32_t{0}, 499.0});
  delta->AppendRow({int32_t{1}, 1000.0});
  ASSERT_TRUE(db->AppendTable("m", *delta).ok());

  Result merged = db->Sql(q);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.delta_reuses(), 1);
  EXPECT_EQ(merged.agg_merges(), 1);
  EXPECT_EQ(BitRows(*merged.table(), false), Truth(db.get(), q, false));
}

TEST(DeltaTest, GroupedAggDeltaMissingGroups) {
  // A delta touching only one group must not disturb the others (grouped
  // aggregation emits no row for a group absent from the delta window).
  auto db = Database::OpenOrDie(DeltaOptions());
  Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 3000; ++i) {
    t->AppendRow({int32_t{i % 3}, static_cast<double>(i % 100)});
  }
  ASSERT_TRUE(db->CreateTable("m", t).ok());
  const std::string q =
      "SELECT k, MIN(v) AS lo, MAX(v) AS hi, SUM(v) AS sv FROM m GROUP BY k";
  ASSERT_TRUE(db->Sql(q).ok());

  TablePtr delta = MakeTable(s);
  delta->AppendRow({int32_t{0}, 7.0});
  ASSERT_TRUE(db->AppendTable("m", *delta).ok());

  Result merged = db->Sql(q);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged.delta_reuses(), 1);
  EXPECT_EQ(BitRows(*merged.table(), false), Truth(db.get(), q, false));
}

TEST(DeltaTest, EmptyDeltaStaysExactHit) {
  // A zero-row append leaves the high-water mark unchanged: the cached
  // entry is still fresh and serves as a plain exact hit.
  auto db = Database::OpenOrDie(DeltaOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = 2048;
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  const std::string q =
      "SELECT sensor, SUM(value) AS total FROM events GROUP BY sensor";
  ASSERT_TRUE(db->Sql(q).ok());

  TablePtr empty = rollup::MakeBatch(0, 2048, ropt);
  ASSERT_TRUE(db->AppendTable("events", *empty).ok());

  Result again = db->Sql(q);
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again.reuses(), 1);
  EXPECT_EQ(again.delta_reuses(), 0);
  EXPECT_EQ(BitRows(*again.table(), false), Truth(db.get(), q, false));
}

TEST(DeltaTest, GlobalMinMaxNotMergedButCorrect) {
  // Global (ungrouped) MIN/MAX is excluded from merging — an empty delta
  // group would union the operator's pad row into the result — so the
  // append evicts the entry and the query re-executes correctly.
  auto db = Database::OpenOrDie(DeltaOptions());
  Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 2000; ++i) {
    t->AppendRow({int32_t{i % 2}, static_cast<double>(i % 500)});
  }
  ASSERT_TRUE(db->CreateTable("m", t).ok());
  const std::string q = "SELECT MIN(v) AS lo, MAX(v) AS hi FROM m";
  ASSERT_TRUE(db->Sql(q).ok());

  TablePtr delta = MakeTable(s);
  delta->AppendRow({int32_t{0}, -5.0});
  ASSERT_TRUE(db->AppendTable("m", *delta).ok());

  Result r = db->Sql(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.delta_reuses(), 0);
  EXPECT_EQ(BitRows(*r.table(), false), Truth(db.get(), q, false));
}

TEST(DeltaTest, SelectChainStitchPreservesRowOrder) {
  auto db = Database::OpenOrDie(DeltaOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = 6000;
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  const std::string q =
      "SELECT ts, sensor, value FROM events WHERE value >= 900.0";
  ASSERT_TRUE(db->Sql(q).ok());

  int64_t rows = ropt.initial_rows;
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(
        db->AppendTable("events", *rollup::MakeBatch(700, rows, ropt)).ok());
    rows += 700;
    Result stitched = db->Sql(q);
    ASSERT_TRUE(stitched.ok()) << stitched.status().ToString();
    EXPECT_EQ(stitched.delta_reuses(), 1) << "round " << round;
    EXPECT_EQ(stitched.agg_merges(), 0) << "round " << round;
    // Ordered comparison: cached prefix then delta window IS scan order.
    EXPECT_EQ(BitRows(*stitched.table(), true), Truth(db.get(), q, true));
  }
}

TEST(DeltaTest, RollupScenarioAllShapesBitIdentical) {
  // The full time-series rollup set (grouped SUM/COUNT/AVG/MIN/MAX and
  // overlapping threshold windows) across several append rounds: every
  // repeat after the seed round must hit, every result bit-identical.
  auto db = Database::OpenOrDie(DeltaOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = 5000;
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  std::vector<std::string> queries = rollup::RollupSql(ropt);

  for (const std::string& q : queries) {
    ASSERT_TRUE(db->Sql(q).ok());
  }
  int64_t rows = ropt.initial_rows;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        db->AppendTable("events", *rollup::MakeBatch(333, rows, ropt)).ok());
    rows += 333;
    for (const std::string& q : queries) {
      Result r = db->Sql(q);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(r.recycled()) << q << " round " << round;
      EXPECT_EQ(BitRows(*r.table(), false), Truth(db.get(), q, false)) << q;
    }
  }
  EXPECT_GT(db->counters().delta_hits.load(), 0);
  EXPECT_GT(db->counters().agg_merges.load(), 0);
}

TEST(DeltaTest, ReplaceTableStillHardInvalidates) {
  auto db = Database::OpenOrDie(DeltaOptions());
  Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 1000; ++i) t->AppendRow({int32_t{i % 4}, 1.0});
  ASSERT_TRUE(db->CreateTable("m", t).ok());
  const std::string q = "SELECT k, SUM(v) AS sv FROM m GROUP BY k";
  ASSERT_TRUE(db->Sql(q).ok());

  TablePtr t2 = MakeTable(s);
  for (int i = 0; i < 1000; ++i) t2->AppendRow({int32_t{i % 4}, 2.0});
  ASSERT_TRUE(db->ReplaceTable("m", t2).ok());

  Result r = db->Sql(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.reuses(), 0);
  EXPECT_EQ(BitRows(*r.table(), false), Truth(db.get(), q, false));
}

TEST(DeltaTest, ConcurrentAppendsVsDeltaScans) {
  // TSan stress: one writer appending batches races readers whose
  // repeated rollup is served through the delta path. Every result must
  // be a consistent prefix snapshot: the row count it reflects is
  // initial + k*batch for an integral k, and SUM(ts) over the dense
  // 0..T-1 timestamps must equal T*(T-1)/2 — a torn read mixing two
  // snapshots cannot satisfy both.
  constexpr int64_t kInitial = 4096;
  constexpr int64_t kBatch = 256;
  constexpr int kAppends = 20;
  auto db = Database::OpenOrDie(DeltaOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = kInitial;
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  const std::string q =
      "SELECT sensor, COUNT(value) AS n, SUM(ts) AS st FROM events"
      " GROUP BY sensor";
  ASSERT_TRUE(db->Sql(q).ok());

  std::atomic<bool> writer_ok{true};
  std::thread writer([&] {
    for (int i = 0; i < kAppends; ++i) {
      TablePtr batch = rollup::MakeBatch(kBatch, kInitial + i * kBatch, ropt);
      if (!db->AppendTable("events", *batch).ok()) writer_ok.store(false);
      std::this_thread::yield();
    }
  });

  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto session = db->Connect();
      for (int i = 0; i < 40; ++i) {
        Result res = session->Sql(q);
        if (!res.ok()) {
          violations.fetch_add(1);
          continue;
        }
        const Table& t = *res.table();
        int64_t total = 0, ts_sum = 0;
        for (int64_t row = 0; row < t.num_rows(); ++row) {
          total += std::get<int64_t>(t.Get(row, 1));
          ts_sum += std::get<int64_t>(t.Get(row, 2));
        }
        bool prefix = total >= kInitial &&
                      total <= kInitial + kAppends * kBatch &&
                      (total - kInitial) % kBatch == 0;
        bool dense = ts_sum == total * (total - 1) / 2;
        if (!prefix || !dense) violations.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_TRUE(writer_ok.load());
  EXPECT_EQ(violations.load(), 0);
}

}  // namespace
}  // namespace recycledb
