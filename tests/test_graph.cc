// Tests for recycler-graph matching, insertion, name mapping, importance
// (h_R) maintenance, aging, and the benefit metric (paper §III).
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "recycler/recycler.h"

namespace recycledb {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 2000; ++i) {
      t->AppendRow({int32_t{i % 50}, static_cast<double>(i)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  PlanPtr SelectPlan(int64_t threshold) {
    return PlanNode::Select(
        PlanNode::Scan("t", {"k", "v"}),
        Expr::Gt(Expr::Column("k"), Expr::Literal(threshold)));
  }

  PlanPtr AggPlan(int64_t threshold, const std::string& out = "sv") {
    return PlanNode::Aggregate(SelectPlan(threshold), {"k"},
                               {{AggFunc::kSum, Expr::Column("v"), out}});
  }

  /// Finds the unique graph node whose param fingerprint contains `sub`.
  RGNode* FindNode(Recycler& rec, const std::string& sub) {
    RGNode* found = nullptr;
    for (const auto& n : rec.graph().nodes()) {
      if (Contains(n->param_fp, sub)) {
        EXPECT_EQ(found, nullptr) << "ambiguous node query: " << sub;
        found = n.get();
      }
    }
    return found;
  }

  Catalog catalog_;
};

TEST_F(GraphTest, IdenticalPlansShareAllNodes) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(SelectPlan(10));
  int64_t nodes_after_first = rec.graph().Stats().num_nodes;
  EXPECT_EQ(nodes_after_first, 2);  // scan + select
  rec.Execute(SelectPlan(10));
  EXPECT_EQ(rec.graph().Stats().num_nodes, nodes_after_first);
}

TEST_F(GraphTest, DifferentConstantsShareOnlyTheScan) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(SelectPlan(10));
  rec.Execute(SelectPlan(20));
  EXPECT_EQ(rec.graph().Stats().num_nodes, 3);  // 1 scan + 2 selects
  EXPECT_EQ(rec.graph().Stats().num_leaves, 1);
}

TEST_F(GraphTest, AliasDifferencesUnifyViaNameMapping) {
  // The same aggregation under different output aliases is ONE graph node
  // (the graph canonicalizes assigned names with a node-id suffix).
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10, "total_a"));
  int64_t n1 = rec.graph().Stats().num_nodes;
  rec.Execute(AggPlan(10, "renamed_b"));
  EXPECT_EQ(rec.graph().Stats().num_nodes, n1);
  RGNode* agg = FindNode(rec, "agg:");
  ASSERT_NE(agg, nullptr);
  // The graph-space output name carries the id suffix.
  EXPECT_TRUE(Contains(agg->output_names[1], "#")) << agg->output_names[1];
}

TEST_F(GraphTest, IntraQuerySharingDetected) {
  // A self-join whose both sides are the same subtree: one graph chain.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  PlanPtr left = PlanNode::Aggregate(
      SelectPlan(5), {"k"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  PlanPtr right = PlanNode::Project(
      PlanNode::Aggregate(SelectPlan(5), {"k"},
                          {{AggFunc::kSum, Expr::Column("v"), "sv"}}),
      {{Expr::Column("k"), "k2"}, {Expr::Column("sv"), "sv2"}});
  PlanPtr join = PlanNode::HashJoin(left, right, JoinKind::kInner, {"k"},
                                    {"k2"});
  rec.Execute(join);
  // scan, select, agg shared; project + join on top = 5 nodes.
  EXPECT_EQ(rec.graph().Stats().num_nodes, 5);
}

TEST_F(GraphTest, ImportanceCountsReoccurrences) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;  // disable materialization so h is undisturbed
  Recycler rec(&catalog_, cfg);
  rec.Execute(SelectPlan(10));  // inserts: h stays 0
  RGNode* sel = FindNode(rec, "select:");
  ASSERT_NE(sel, nullptr);
  EXPECT_DOUBLE_EQ(sel->h, 0.0);
  rec.Execute(SelectPlan(10));
  EXPECT_DOUBLE_EQ(sel->h, 1.0);
  rec.Execute(SelectPlan(10));
  EXPECT_DOUBLE_EQ(sel->h, 2.0);
}

TEST_F(GraphTest, AgingDecaysImportance) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;
  cfg.aging_alpha = 0.5;
  Recycler rec(&catalog_, cfg);
  rec.Execute(SelectPlan(10));
  rec.Execute(SelectPlan(10));  // h = 1 at epoch 2
  RGNode* sel = FindNode(rec, "select:");
  ASSERT_NE(sel, nullptr);
  double h_now = rec.graph().AgedH(sel);
  EXPECT_DOUBLE_EQ(h_now, 1.0);
  // Unrelated queries advance the epoch; h decays by alpha each epoch.
  rec.Execute(SelectPlan(11));
  rec.Execute(SelectPlan(12));
  EXPECT_NEAR(rec.graph().AgedH(sel), 0.25, 1e-9);
}

TEST_F(GraphTest, BcostAnnotatedAfterExecution) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  RGNode* agg = FindNode(rec, "agg:");
  ASSERT_NE(agg, nullptr);
  EXPECT_TRUE(agg->has_bcost);
  EXPECT_GE(agg->bcost_ms, 0.0);
  EXPECT_GT(agg->rows, 0);
  RGNode* scan = FindNode(rec, "scan:");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->rows, 2000);
  // Inclusive: the aggregate's base cost covers its whole subtree.
  EXPECT_GE(agg->bcost_ms, scan->bcost_ms - 1e-6);
}

TEST_F(GraphTest, TrueCostSubtractsDmd) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  // First run: speculation materializes the aggregate (final result).
  rec.Execute(AggPlan(10));
  RGNode* agg = FindNode(rec, "agg:");
  RGNode* sel = FindNode(rec, "select:");
  ASSERT_NE(agg, nullptr);
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(agg->mat_state.load(), MatState::kCached);
  // A parent of agg would see agg as DMD; test via select: its true cost
  // has no materialized descendants, so equals bcost.
  std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
  EXPECT_DOUBLE_EQ(rec.TrueCost(sel), sel->bcost_ms);
  // And the cached aggregate's own true cost is still full (DMDs are
  // descendants, not the node itself).
  EXPECT_DOUBLE_EQ(rec.TrueCost(agg), agg->bcost_ms);
}

TEST_F(GraphTest, UpdateHrOnMaterializeReducesDescendants) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  // Three occurrences: 1st inserts, 2nd materializes (HIST store), h of
  // descendants is then reduced by the aggregate's h (Eq. 3).
  rec.Execute(AggPlan(10));
  RGNode* sel = FindNode(rec, "select:");
  RGNode* agg = FindNode(rec, "agg:");
  ASSERT_NE(sel, nullptr);
  rec.Execute(AggPlan(10));  // h(agg)=h(sel)=1; store decision on agg
  ASSERT_EQ(agg->mat_state.load(), MatState::kCached);
  // Eq. 3: h(sel) = 1 - h(agg at materialization) = 0.
  EXPECT_DOUBLE_EQ(sel->h, 0.0);
}

TEST_F(GraphTest, UpdateHrOnEvictRestoresDescendants) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  rec.Execute(AggPlan(10));
  RGNode* sel = FindNode(rec, "select:");
  RGNode* agg = FindNode(rec, "agg:");
  ASSERT_EQ(agg->mat_state.load(), MatState::kCached);
  double h_agg = agg->h;
  double h_sel_before = sel->h;
  rec.FlushCache();  // evicts agg -> Eq. 4 gives h back to descendants
  EXPECT_EQ(agg->mat_state.load(), MatState::kNone);
  EXPECT_DOUBLE_EQ(sel->h, h_sel_before + h_agg);
}

TEST_F(GraphTest, NodesBelowCachedAncestorDoNotGainH) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));  // speculation caches the aggregate
  RGNode* agg = FindNode(rec, "agg:");
  RGNode* sel = FindNode(rec, "select:");
  ASSERT_EQ(agg->mat_state.load(), MatState::kCached);
  double h_sel = sel->h;
  double h_agg = agg->h;
  rec.Execute(AggPlan(10));  // answered by the cached aggregate
  EXPECT_DOUBLE_EQ(agg->h, h_agg + 1);  // the used node gains h
  EXPECT_DOUBLE_EQ(sel->h, h_sel);      // shadowed descendant does not
}

TEST_F(GraphTest, GraphStatsTrackCachedBytes) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  GraphStats s = rec.graph().Stats();
  EXPECT_GE(s.num_cached, 1);
  EXPECT_GT(s.cached_bytes, 0);
  rec.FlushCache();
  s = rec.graph().Stats();
  EXPECT_EQ(s.num_cached, 0);
  EXPECT_EQ(s.cached_bytes, 0);
}

}  // namespace
}  // namespace recycledb
