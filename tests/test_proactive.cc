// Tests for proactive strategies (§IV-B): top-N caching, cube caching
// with selections (incl. the pull-up case), cube caching with binning,
// and the gating logic in PA mode.
#include <gtest/gtest.h>

#include "recycler/proactive.h"
#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

class ProactiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"grp", TypeId::kString},
              {"cat", TypeId::kInt32},   // low-cardinality (8 values)
              {"val", TypeId::kDouble},
              {"when_d", TypeId::kDate}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 20000; ++i) {
      int32_t day = MakeDate(1994, 1, 1) + i % 1400;  // ~ 4 years of dates
      t->AppendRow({std::string(i % 2 == 0 ? "A" : "B"), int32_t{i % 8},
                    static_cast<double>(i % 211), day});
    }
    ASSERT_TRUE(catalog_.RegisterTable("f", t).ok());
  }

  /// Aggregate(grp; sum, count, avg) over Select(pred) over Scan.
  PlanPtr AggOverSelect(ExprPtr pred) {
    return PlanNode::Aggregate(
        PlanNode::Select(PlanNode::Scan("f", {"grp", "cat", "val", "when_d"}),
                         std::move(pred)),
        {"grp"},
        {{AggFunc::kSum, Expr::Column("val"), "sv"},
         {AggFunc::kCount, Expr::Literal(int64_t{1}), "cnt"},
         {AggFunc::kAvg, Expr::Column("val"), "av"}});
  }

  std::multiset<std::string> RunOff(const PlanPtr& plan) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    return recycledb::testing::RowMultiset(*off.Execute(plan).table);
  }

  Catalog catalog_;
};

TEST_F(ProactiveTest, TopNRewriteShape) {
  PlanPtr plan = PlanNode::TopN(PlanNode::Scan("f", {"val"}),
                                {{"val", false}}, 25);
  PlanPtr rewritten = RewriteTopNProactive(plan, 10000);
  ASSERT_NE(rewritten, plan);
  EXPECT_EQ(rewritten->type(), OpType::kLimit);
  EXPECT_EQ(rewritten->limit(), 25);
  EXPECT_EQ(rewritten->child()->type(), OpType::kTopN);
  EXPECT_EQ(rewritten->child()->limit(), 10000);
  // Already-large top-Ns are untouched.
  PlanPtr big = PlanNode::TopN(PlanNode::Scan("f", {"val"}),
                               {{"val", false}}, 10000);
  EXPECT_EQ(RewriteTopNProactive(big, 10000), big);
}

TEST_F(ProactiveTest, TopNRewritePreservesSemantics) {
  PlanPtr plan = PlanNode::TopN(PlanNode::Scan("f", {"val", "cat"}),
                                {{"val", false}, {"cat", true}}, 25);
  PlanPtr rewritten = RewriteTopNProactive(plan, 10000);
  rewritten->Bind(catalog_);
  EXPECT_EQ(RunOff(rewritten), RunOff(plan->CloneShallow()));
}

TEST_F(ProactiveTest, CubeWithSelectionsRewrite) {
  // cat has 8 distinct values -> qualifies under the threshold.
  PlanPtr plan = AggOverSelect(
      Expr::Eq(Expr::Column("cat"), Expr::Literal(int64_t{3})));
  plan->Bind(catalog_);
  auto cube = TryCubeRewrite(plan, catalog_, 64);
  ASSERT_TRUE(cube.has_value());
  ASSERT_NE(cube->gate, nullptr);
  EXPECT_EQ(cube->gate->type(), OpType::kAggregate);
  // The gate groups by grp AND cat (extended group by).
  EXPECT_EQ(cube->gate->group_by().size(), 2u);
  cube->plan->Bind(catalog_);
  EXPECT_EQ(RunOff(cube->plan), RunOff(AggOverSelect(Expr::Eq(
                                    Expr::Column("cat"),
                                    Expr::Literal(int64_t{3})))));
}

TEST_F(ProactiveTest, CubeThresholdBlocksHighCardinality) {
  // val has ~211 distinct values; threshold 64 rejects.
  PlanPtr plan = AggOverSelect(
      Expr::Eq(Expr::Column("val"), Expr::Literal(5.0)));
  plan->Bind(catalog_);
  EXPECT_FALSE(TryCubeRewrite(plan, catalog_, 64).has_value());
  // A generous threshold allows it.
  EXPECT_TRUE(TryCubeRewrite(plan, catalog_, 1000).has_value());
}

TEST_F(ProactiveTest, CubePullUpWhenPredicateOnGroupColumns) {
  // Selection on grp (a grouping column): selection commutes with the
  // aggregation -> Select over the unfiltered aggregate.
  PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Select(PlanNode::Scan("f", {"grp", "val"}),
                       Expr::Eq(Expr::Column("grp"),
                                Expr::Literal(std::string("A")))),
      {"grp"}, {{AggFunc::kSum, Expr::Column("val"), "sv"}});
  plan->Bind(catalog_);
  auto cube = TryCubeRewrite(plan, catalog_, 64);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(cube->plan->type(), OpType::kSelect);
  EXPECT_EQ(cube->plan->child(), cube->gate);
  cube->plan->Bind(catalog_);
  EXPECT_EQ(RunOff(cube->plan), RunOff(plan->CloneShallow()));
}

TEST_F(ProactiveTest, CubeWithBinningRewrite) {
  int32_t cutoff = MakeDate(1996, 3, 17);
  PlanPtr plan = AggOverSelect(Expr::Le(Expr::Column("when_d"),
                                        Expr::Literal(cutoff)));
  plan->Bind(catalog_);
  auto cube = TryCubeRewrite(plan, catalog_, 64);
  ASSERT_TRUE(cube.has_value());
  // The gate is the year-binned cube.
  EXPECT_EQ(cube->gate->type(), OpType::kAggregate);
  bool has_year_group = false;
  for (const auto& g : cube->gate->group_by()) {
    if (g.find("_year") != std::string::npos) has_year_group = true;
  }
  EXPECT_TRUE(has_year_group);
  cube->plan->Bind(catalog_);
  EXPECT_EQ(RunOff(cube->plan),
            RunOff(AggOverSelect(
                Expr::Le(Expr::Column("when_d"), Expr::Literal(cutoff)))));
}

TEST_F(ProactiveTest, BinningHandlesStrictLessThan) {
  int32_t cutoff = MakeDate(1997, 1, 1);
  PlanPtr plan = AggOverSelect(Expr::Lt(Expr::Column("when_d"),
                                        Expr::Literal(cutoff)));
  plan->Bind(catalog_);
  auto cube = TryCubeRewrite(plan, catalog_, 64);
  ASSERT_TRUE(cube.has_value());
  cube->plan->Bind(catalog_);
  EXPECT_EQ(RunOff(cube->plan),
            RunOff(AggOverSelect(
                Expr::Lt(Expr::Column("when_d"), Expr::Literal(cutoff)))));
}

TEST_F(ProactiveTest, RewriteFindsNestedPattern) {
  // The Aggregate-over-Select sits under an OrderBy: the rewriter splices.
  PlanPtr inner = AggOverSelect(
      Expr::Eq(Expr::Column("cat"), Expr::Literal(int64_t{2})));
  PlanPtr plan = PlanNode::OrderBy(inner, {{"grp", true}});
  plan->Bind(catalog_);
  auto cube = TryCubeRewrite(plan, catalog_, 64);
  ASSERT_TRUE(cube.has_value());
  EXPECT_EQ(cube->plan->type(), OpType::kOrderBy);
}

TEST_F(ProactiveTest, PaGatingFirstOriginalThenProactive) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kProactive;
  Recycler rec(&catalog_, cfg);
  auto q = [&](int64_t cat) {
    return AggOverSelect(Expr::Eq(Expr::Column("cat"), Expr::Literal(cat)));
  };
  // First invocation: the gate aggregate is unknown -> original plan runs
  // (but the proactive variant is inserted and scored).
  QueryTrace t1;
  rec.Execute(q(1), &t1);
  EXPECT_FALSE(t1.used_proactive);
  // Second invocation (different parameter, same pattern): the gate has
  // history -> the proactive plan executes and caches the cube.
  QueryTrace t2;
  rec.Execute(q(2), &t2);
  EXPECT_TRUE(t2.used_proactive);
  // Third invocation: answered from the cached cube.
  QueryTrace t3;
  ExecResult r3 = rec.Execute(q(3), &t3);
  EXPECT_TRUE(t3.used_proactive);
  EXPECT_GE(t3.num_reuses, 1);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r3.table), RunOff(q(3)));
}

TEST_F(ProactiveTest, PaModeMatchesOffResultsOnMixedWorkload) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kProactive;
  Recycler rec(&catalog_, cfg);
  for (int round = 0; round < 3; ++round) {
    for (int64_t cat = 0; cat < 4; ++cat) {
      PlanPtr q = AggOverSelect(
          Expr::Eq(Expr::Column("cat"), Expr::Literal(cat)));
      PlanPtr q2 = AggOverSelect(
          Expr::Eq(Expr::Column("cat"), Expr::Literal(cat)));
      ExecResult r = rec.Execute(q);
      EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), RunOff(q2))
          << "round " << round << " cat " << cat;
    }
  }
}

}  // namespace
}  // namespace recycledb
