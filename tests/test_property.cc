// Property-based tests: random plan workloads against the recycler.
//
// Properties checked across randomized workloads (parameterized by seed):
//  P1. Transparency: every mode returns exactly the OFF results, with
//      arbitrary interleaving and repetition.
//  P2. Graph idempotence: re-preparing a seen plan adds no nodes.
//  P3. h is never negative; epochs never exceed the global epoch.
//  P4. The cache never exceeds its capacity.
//  P5. Cached state is consistent: mat_state == kCached iff the node
//      holds a table, and cached bytes add up.
//  P6. Differential SQL fuzz: random SQL over a random append schedule
//      returns bit-identical rows recycler-on vs bypass, and the
//      recorded trace replays on a fresh engine with identical reuse
//      modes and digests.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "recycler/recycler.h"
#include "test_util.h"
#include "trace/recorder.h"
#include "trace/replayer.h"
#include "trace/trace_format.h"

namespace recycledb {
namespace {

/// Generates random but always-valid plans over the fixed test table
/// t(a:int32, b:int32, v:double, s:string, d:date).
class RandomPlanGenerator {
 public:
  explicit RandomPlanGenerator(uint64_t seed) : rng_(seed) {}

  PlanPtr Next() {
    PlanPtr plan = PlanNode::Scan("t", {"a", "b", "v", "s", "d"});
    if (rng_.Uniform(0, 3) > 0) plan = AddSelect(plan);
    switch (rng_.Uniform(0, 3)) {
      case 0:
        plan = AddAggregate(plan);
        break;
      case 1:
        plan = AddProject(plan);
        break;
      case 2:
        plan = AddAggregate(plan);
        if (rng_.Uniform(0, 1) == 0) plan = AddTopN(plan);
        break;
      default:
        break;  // bare (filtered) scan
    }
    return plan;
  }

 private:
  ExprPtr RandomPredicate() {
    // Small constant domains so plans repeat across the workload.
    ExprPtr c1 = Expr::Compare(
        static_cast<CompareOp>(rng_.Uniform(0, 5)), Expr::Column("a"),
        Expr::Literal(rng_.Uniform(0, 4) * 10));
    if (rng_.Uniform(0, 1) == 0) return c1;
    return Expr::And(c1, Expr::Lt(Expr::Column("b"),
                                  Expr::Literal(rng_.Uniform(1, 4) * 100)));
  }

  PlanPtr AddSelect(PlanPtr in) {
    return PlanNode::Select(std::move(in), RandomPredicate());
  }

  PlanPtr AddProject(PlanPtr in) {
    return PlanNode::Project(
        std::move(in),
        {{Expr::Column("a"), "pa"},
         {Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                      Expr::Literal(static_cast<double>(rng_.Uniform(1, 3)))),
          "pv"}});
  }

  PlanPtr AddAggregate(PlanPtr in) {
    std::vector<std::string> groups;
    if (rng_.Uniform(0, 3) > 0) {
      groups.push_back(rng_.Uniform(0, 1) == 0 ? "a" : "b");
    }
    std::vector<AggItem> aggs;
    aggs.push_back({AggFunc::kSum, Expr::Column("v"), "sv"});
    if (rng_.Uniform(0, 1) == 0) {
      aggs.push_back({AggFunc::kCount, Expr::Literal(int64_t{1}), "cnt"});
    }
    if (rng_.Uniform(0, 2) == 0) {
      aggs.push_back({AggFunc::kMax, Expr::Column("v"), "mx"});
    }
    return PlanNode::Aggregate(std::move(in), std::move(groups),
                               std::move(aggs));
  }

  PlanPtr AddTopN(PlanPtr in) {
    return PlanNode::TopN(std::move(in), {{"sv", false}},
                          rng_.Uniform(1, 20));
  }

  Rng rng_;
};

class PropertyTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new Catalog();
    Schema s({{"a", TypeId::kInt32},
              {"b", TypeId::kInt32},
              {"v", TypeId::kDouble},
              {"s", TypeId::kString},
              {"d", TypeId::kDate}});
    TablePtr t = MakeTable(s);
    Rng rng(271828);
    for (int i = 0; i < 30000; ++i) {
      t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 60)),
                    static_cast<int32_t>(rng.Uniform(0, 500)),
                    static_cast<double>(rng.Uniform(0, 100000)) / 7.0,
                    "w" + std::to_string(rng.Uniform(0, 30)),
                    MakeDate(1994, 1, 1) +
                        static_cast<int32_t>(rng.Uniform(0, 1500))});
    }
    ASSERT_TRUE(catalog_->RegisterTable("t", t).ok());
  }

  static void CheckInvariants(Recycler& rec) {
    std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
    int64_t epoch = rec.graph().epoch();
    int64_t cached_total = 0;
    for (const auto& n : rec.graph().nodes()) {
      EXPECT_GE(n->h, 0.0) << "P3: negative h on node " << n->param_fp;
      EXPECT_LE(n->h_epoch, epoch) << "P3: epoch from the future";
      bool cached = n->mat_state.load() == MatState::kCached;
      EXPECT_EQ(cached, n->cached != nullptr)
          << "P5: state/table mismatch on " << n->param_fp;
      if (cached) cached_total += n->cached_bytes;
    }
    EXPECT_EQ(cached_total, rec.cache().used_bytes()) << "P5: byte drift";
    if (!rec.cache().unlimited()) {
      EXPECT_LE(rec.cache().used_bytes(), rec.cache().capacity_bytes())
          << "P4: cache over capacity";
    }
  }

  static Catalog* catalog_;
};
Catalog* PropertyTest::catalog_ = nullptr;

TEST_P(PropertyTest, TransparencyAcrossModes) {
  const int seed = GetParam();
  for (RecyclerMode mode : {RecyclerMode::kHistory, RecyclerMode::kSpeculation,
                            RecyclerMode::kProactive}) {
    RecyclerConfig off_cfg;
    off_cfg.mode = RecyclerMode::kOff;
    Recycler off(catalog_, off_cfg);
    RecyclerConfig on_cfg;
    on_cfg.mode = mode;
    on_cfg.cache_bytes = 8 << 20;  // small enough to force evictions
    Recycler on(catalog_, on_cfg);

    // Two generators with the same seed produce the same workload; reuse
    // opportunities come from the small constant domains.
    RandomPlanGenerator gen_a(seed);
    RandomPlanGenerator gen_b(seed);
    for (int q = 0; q < 40; ++q) {
      PlanPtr plan_off = gen_a.Next();
      PlanPtr plan_on = gen_b.Next();
      SCOPED_TRACE("seed " + std::to_string(seed) + " query " +
                   std::to_string(q) + " mode " +
                   std::string(RecyclerModeName(mode)));
      ExecResult r_off = off.Execute(plan_off);
      ExecResult r_on = on.Execute(plan_on);
      if (plan_off->type() == OpType::kTopN) {
        // Ties at the cut are resolved arbitrarily: compare sort keys.
        EXPECT_EQ(recycledb::testing::ColumnMultiset(*r_off.table, {"sv"}),
                  recycledb::testing::ColumnMultiset(*r_on.table, {"sv"}));
      } else {
        EXPECT_EQ(recycledb::testing::RowMultiset(*r_off.table),
                  recycledb::testing::RowMultiset(*r_on.table));
      }
      CheckInvariants(on);
    }
  }
}

TEST_P(PropertyTest, GraphIdempotenceUnderRepetition) {
  const int seed = GetParam();
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;  // matching only
  Recycler rec(catalog_, cfg);
  RandomPlanGenerator gen(seed);
  std::vector<PlanPtr> plans;
  for (int i = 0; i < 20; ++i) plans.push_back(gen.Next());
  for (const auto& p : plans) rec.Prepare(p->CloneShallow());
  int64_t nodes = rec.graph().Stats().num_nodes;
  // Re-preparing the same plans must not grow the graph (P2).
  for (const auto& p : plans) rec.Prepare(p->CloneShallow());
  EXPECT_EQ(rec.graph().Stats().num_nodes, nodes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 7, 23, 51, 97, 131, 211, 307));

// ---------------------------------------------------------------------------
// P6: differential SQL fuzz over a random append schedule
// ---------------------------------------------------------------------------

/// Deterministic per-row content for the fuzz table: the row at global
/// index `i` is the same whether it landed in the initial load or in a
/// later append batch, so replay can regenerate any recorded batch.
void AppendFuzzRows(Table* t, int64_t start_row, int64_t rows) {
  for (int64_t i = start_row; i < start_row + rows; ++i) {
    Rng rng(0x5fbu ^ static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull);
    // v is a multiple of 1/8: sums stay exactly representable, so
    // aggregate results are order-independent and the bit-identity
    // check compares content, not summation order (delta merges and
    // subsumption legitimately re-associate floating-point sums).
    t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 60)),
                  static_cast<int32_t>(rng.Uniform(0, 500)),
                  static_cast<double>(rng.Uniform(0, 100000)) / 8.0});
  }
}

TablePtr MakeFuzzBatch(int64_t rows, int64_t start_row) {
  TablePtr batch = MakeTable(Schema({{"a", TypeId::kInt32},
                                     {"b", TypeId::kInt32},
                                     {"v", TypeId::kDouble}}));
  AppendFuzzRows(batch.get(), start_row, rows);
  return batch;
}

/// Random SQL over fuzz(a, b, v) with small constant domains, so the
/// workload repeats spellings (exact), refines them (subsumption),
/// slides ranges (stitch) and re-aggregates across appends (delta /
/// agg-merge). No ORDER BY: rows compare as multisets.
std::string RandomFuzzSql(Rng* rng) {
  char buf[160];
  switch (rng->Uniform(0, 3)) {
    case 0: {
      int lo = static_cast<int>(rng->Uniform(0, 4)) * 10;
      std::snprintf(buf, sizeof(buf),
                    "SELECT * FROM fuzz WHERE a >= %d AND a < %d", lo,
                    lo + 20);
      break;
    }
    case 1: {
      int cut = static_cast<int>(rng->Uniform(1, 4)) * 100;
      std::snprintf(buf, sizeof(buf),
                    "SELECT a, SUM(v) AS sv, COUNT(v) AS n FROM fuzz"
                    " WHERE b < %d GROUP BY a",
                    cut);
      break;
    }
    case 2: {
      int lo = static_cast<int>(rng->Uniform(0, 2)) * 15;
      std::snprintf(buf, sizeof(buf),
                    "SELECT b, MIN(v) AS lo, MAX(v) AS hi FROM fuzz"
                    " WHERE a >= %d GROUP BY b",
                    lo);
      break;
    }
    default: {
      int t = static_cast<int>(rng->Uniform(0, 5));
      std::snprintf(buf, sizeof(buf),
                    "SELECT * FROM fuzz WHERE v >= %d000.0", 2 + t * 2);
      break;
    }
  }
  return buf;
}

/// Bit-exact row multiset: doubles at %.17g (round-trip precision), so a
/// ULP of divergence between the arms fails the comparison.
std::multiset<std::string> BitRowMultiset(const Table& t) {
  std::multiset<std::string> rows;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (int c = 0; c < t.num_columns(); ++c) {
      const Datum& d = t.Get(r, c);
      if (d.index() == 4) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(d));
        key += buf;
      } else {
        key += DatumToString(d);
      }
      key += "|";
    }
    rows.insert(std::move(key));
  }
  return rows;
}

class SqlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlFuzzTest, DifferentialAgainstBypassAndReplay) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  constexpr int64_t kInitialRows = 4096;
  constexpr int kQueries = 60;

  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = -1;
  options.recycler.use_cost_model = true;
  options.recycler.capture_plan_explain = true;
  auto db = Database::OpenOrDie(options);
  ASSERT_TRUE(db->CreateTable("fuzz", MakeFuzzBatch(kInitialRows, 0)).ok());

  trace::TraceHeader header;
  header.seed = seed;
  header.workload = "sql_fuzz";
  header.mode = RecyclerModeName(RecyclerMode::kSpeculation);
  trace::TraceRecorder recorder(header);
  auto recycled = db->Connect();
  recycled->set_recorder(&recorder);
  SessionOptions bypass_opts;
  bypass_opts.bypass_recycler = true;
  auto bypass = db->Connect(bypass_opts);

  // Random schedule: mostly queries, occasionally an append. Both arms
  // run against the same engine state at every step.
  Rng rng(seed);
  int64_t next_row = kInitialRows;
  int hits = 0;
  for (int q = 0; q < kQueries; ++q) {
    if (rng.Uniform(0, 7) == 0) {
      const int64_t batch = 128 + 64 * static_cast<int64_t>(rng.Uniform(0, 3));
      ASSERT_TRUE(
          db->AppendTable("fuzz", *MakeFuzzBatch(batch, next_row)).ok());
      recorder.RecordAppend("fuzz", batch, next_row);
      next_row += batch;
    }
    const std::string sql = RandomFuzzSql(&rng);
    SCOPED_TRACE("seed " + std::to_string(seed) + " query " +
                 std::to_string(q) + ": " + sql);
    Result on = recycled->Sql(sql);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    Result off = bypass->Sql(sql);
    ASSERT_TRUE(off.ok()) << off.status().ToString();
    EXPECT_EQ(BitRowMultiset(*on.table()), BitRowMultiset(*off.table()))
        << "P6: recycled arm diverged from the bypass baseline";
    if (on.recycled()) ++hits;
  }
  EXPECT_GT(hits, 0) << "fuzz workload never hit the cache; the "
                        "differential property was vacuous";

  // Replay the recorded trace on a fresh engine: identical history must
  // reproduce identical reuse decisions and digests.
  trace::Trace recorded = recorder.Snapshot();
  auto fresh = Database::OpenOrDie(options);
  ASSERT_TRUE(
      fresh->CreateTable("fuzz", MakeFuzzBatch(kInitialRows, 0)).ok());
  trace::ReplayOptions ropts;
  ropts.append_provider = [](const trace::AppendEvent& a) {
    return MakeFuzzBatch(a.rows, a.start_row);
  };
  trace::TraceReplayer replayer(fresh.get(), ropts);
  trace::ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.mode_mismatches, 0) << report.ToString();
  EXPECT_EQ(report.digest_mismatches, 0) << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest,
                         ::testing::Values(3, 17, 59, 101));

}  // namespace
}  // namespace recycledb
