// Tests for the single-core speed pack: incremental zone-map
// maintenance, pruned-vs-unpruned bit-equality across all column types,
// the column codecs (round trips, encoded-range selection, corruption
// handling), the v2 compressed spill format (and v1 compatibility), the
// calibrated cost model's determinism, and a concurrent pruned-query
// stress against a compressing cold tier.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <shared_mutex>
#include <thread>

#include "common/string_util.h"
#include "exec/cost_model.h"
#include "recycledb/recycledb.h"
#include "recycler/recycler.h"
#include "storage/compression.h"
#include "storage/spill_file.h"
#include "test_util.h"

namespace recycledb {
namespace {

namespace fs = std::filesystem;
using recycledb::testing::RowMultiset;

/// mkdtemp wrapper honoring $TMPDIR (CI points it at the runner's
/// scratch space); removed recursively on destruction.
class TempSpillDir {
 public:
  TempSpillDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp");
    tmpl += "/rdb-speed-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = mkdtemp(buf.data());
    RDB_CHECK(d != nullptr);
    path_ = d;
  }
  ~TempSpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

RangeBound Bound(Datum v, bool inclusive) {
  RangeBound b;
  b.unbounded = false;
  b.value = std::move(v);
  b.inclusive = inclusive;
  return b;
}

ColumnInterval Between(Datum lo, bool lo_inc, Datum hi, bool hi_inc) {
  ColumnInterval r;
  r.lo = Bound(std::move(lo), lo_inc);
  r.hi = Bound(std::move(hi), hi_inc);
  return r;
}

ColumnInterval AtLeast(Datum lo) {
  ColumnInterval r;
  r.lo = Bound(std::move(lo), true);
  return r;
}

ColumnInterval Below(Datum hi) {
  ColumnInterval r;
  r.hi = Bound(std::move(hi), false);
  return r;
}

template <typename T>
ColumnPtr TypedColumn(TypeId type, std::vector<T> values) {
  ColumnPtr c = MakeColumn(type);
  c->Data<T>() = std::move(values);
  return c;
}

/// Bit-level equality (doubles compared by representation, so NaN and
/// -0.0 survive the comparison).
bool ColumnsBitEqual(const ColumnVector& a, const ColumnVector& b) {
  if (a.type() != b.type() || a.size() != b.size()) return false;
  const size_t n = static_cast<size_t>(a.size());
  switch (a.type()) {
    case TypeId::kBool:
      return std::memcmp(a.Raw<uint8_t>(), b.Raw<uint8_t>(), n) == 0;
    case TypeId::kInt32:
    case TypeId::kDate:
      return std::memcmp(a.Raw<int32_t>(), b.Raw<int32_t>(),
                         n * sizeof(int32_t)) == 0;
    case TypeId::kInt64:
      return std::memcmp(a.Raw<int64_t>(), b.Raw<int64_t>(),
                         n * sizeof(int64_t)) == 0;
    case TypeId::kDouble:
      return std::memcmp(a.Raw<double>(), b.Raw<double>(),
                         n * sizeof(double)) == 0;
    case TypeId::kString: {
      const std::string* x = a.Raw<std::string>();
      const std::string* y = b.Raw<std::string>();
      for (size_t i = 0; i < n; ++i) {
        if (x[i] != y[i]) return false;
      }
      return true;
    }
  }
  return false;
}

/// Reference range check with the same semantics SelectRangeEncoded
/// promises (independent open/closed ends, unbounded = +-inf).
bool InRangeRef(const Datum& v, const ColumnInterval& r) {
  if (!r.lo.unbounded) {
    int c = DatumCompare(v, r.lo.value);
    if (c < 0 || (c == 0 && !r.lo.inclusive)) return false;
  }
  if (!r.hi.unbounded) {
    int c = DatumCompare(v, r.hi.value);
    if (c > 0 || (c == 0 && !r.hi.inclusive)) return false;
  }
  return true;
}

std::vector<int32_t> ReferenceSelect(const ColumnVector& col,
                                     const ColumnInterval& range) {
  std::vector<int32_t> sel;
  for (int64_t i = 0; i < col.size(); ++i) {
    if (InRangeRef(col.GetDatum(i), range)) {
      sel.push_back(static_cast<int32_t>(i));
    }
  }
  return sel;
}

// ---------------------------------------------------------------------------
// Zone-map maintenance
// ---------------------------------------------------------------------------

TEST(ZoneMap, IncrementalMaintenanceUnderAppendRow) {
  Schema s({{"k", TypeId::kInt32}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 3000; ++i) t->AppendRow({static_cast<int32_t>(i)});

  const ZoneMap& zm = t->zone_map(0);
  EXPECT_EQ(zm.type(), TypeId::kInt32);
  EXPECT_EQ(zm.rows_covered(), 3000);
  EXPECT_EQ(zm.num_blocks(), 3);
  EXPECT_TRUE(zm.sorted());
  EXPECT_EQ(std::get<int32_t>(zm.block(0).min), 0);
  EXPECT_EQ(std::get<int32_t>(zm.block(0).max), 1023);
  EXPECT_EQ(std::get<int32_t>(zm.block(1).min), 1024);
  EXPECT_EQ(std::get<int32_t>(zm.block(1).max), 2047);
  // The last block is partial and re-tightens as it fills.
  EXPECT_EQ(std::get<int32_t>(zm.block(2).min), 2048);
  EXPECT_EQ(std::get<int32_t>(zm.block(2).max), 2999);
  EXPECT_TRUE(zm.block(2).sorted);

  // An out-of-order append widens the partial block and clears
  // sortedness without touching sealed blocks.
  t->AppendRow({static_cast<int32_t>(-5)});
  EXPECT_EQ(zm.rows_covered(), 3001);
  EXPECT_FALSE(zm.sorted());
  EXPECT_FALSE(zm.block(2).sorted);
  EXPECT_EQ(std::get<int32_t>(zm.block(2).min), -5);
  EXPECT_EQ(std::get<int32_t>(zm.block(2).max), 2999);
  EXPECT_EQ(std::get<int32_t>(zm.block(0).min), 0);
}

TEST(ZoneMap, MaintainedUnderAppendBatch) {
  Schema s({{"k", TypeId::kInt64}});
  TablePtr t = MakeTable(s);
  for (int chunk = 0; chunk < 2; ++chunk) {
    std::vector<int64_t> v;
    for (int i = 0; i < 1500; ++i) v.push_back(chunk * 1500 + i);
    Batch b;
    b.columns.push_back(TypedColumn<int64_t>(TypeId::kInt64, std::move(v)));
    b.num_rows = 1500;
    t->AppendBatch(b);
  }
  const ZoneMap& zm = t->zone_map(0);
  EXPECT_EQ(zm.rows_covered(), 3000);
  EXPECT_EQ(zm.num_blocks(), 3);
  EXPECT_TRUE(zm.sorted());
  EXPECT_EQ(std::get<int64_t>(zm.block(1).min), 1024);
  EXPECT_EQ(std::get<int64_t>(zm.block(1).max), 2047);
  EXPECT_EQ(std::get<int64_t>(zm.block(2).max), 2999);
}

TEST(ZoneMap, MayOverlapIsConservative) {
  Schema s({{"k", TypeId::kInt32}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 3000; ++i) t->AppendRow({static_cast<int32_t>(i)});
  const ZoneMap& zm = t->zone_map(0);

  ColumnInterval window =
      Between(static_cast<int32_t>(2000), true, static_cast<int32_t>(2100),
              true);
  EXPECT_FALSE(zm.MayOverlap(0, window));
  EXPECT_TRUE(zm.MayOverlap(1, window));  // [1024, 2047] reaches 2000
  EXPECT_TRUE(zm.MayOverlap(2, window));

  // Boundary touch counts as overlap (closed vs. closed).
  ColumnInterval touch = AtLeast(static_cast<int32_t>(1023));
  EXPECT_TRUE(zm.MayOverlap(0, touch));
  // Open bound at the block max does not.
  ColumnInterval open;
  open.lo = Bound(static_cast<int32_t>(1023), false);
  EXPECT_FALSE(zm.MayOverlap(0, open));

  EXPECT_FALSE(zm.MayOverlap(0, AtLeast(static_cast<int32_t>(5000))));
  EXPECT_FALSE(zm.MayOverlap(2, Below(static_cast<int32_t>(-1))));

  // Blocks past the map (rows appended after the map was consulted) must
  // never be pruned.
  EXPECT_TRUE(zm.MayOverlap(zm.num_blocks(), window));
  EXPECT_TRUE(zm.MayOverlap(zm.num_blocks() + 7, window));
}

// ---------------------------------------------------------------------------
// Pruned scans are bit-identical to unpruned scans (all column types)
// ---------------------------------------------------------------------------

constexpr int kWideRows = 8192;

/// All six types, each (except bool) non-decreasing so zone maps have
/// pruning power on every column.
TablePtr MakeWideTable() {
  Schema s({{"b", TypeId::kBool},
            {"i", TypeId::kInt32},
            {"l", TypeId::kInt64},
            {"d", TypeId::kDouble},
            {"s", TypeId::kString},
            {"dt", TypeId::kDate}});
  TablePtr t = MakeTable(s);
  const int32_t day0 = MakeDate(2013, 1, 1);
  for (int i = 0; i < kWideRows; ++i) {
    t->AppendRow({i % 2 == 0, static_cast<int32_t>(i),
                  static_cast<int64_t>(i) * 37 - 5000, i * 0.25,
                  StrFormat("k%06d", i), day0 + i / 4});
  }
  return t;
}

std::unique_ptr<Database> OpenWideDb(bool pruning) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kOff;  // isolate the scan path
  options.recycler.enable_zone_map_pruning = pruning;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  RDB_CHECK(db->CreateTable("w", MakeWideTable()).ok());
  return db;
}

PlanPtr WideScan() {
  return PlanNode::Scan("w", {"b", "i", "l", "d", "s", "dt"});
}

TEST(ZoneMapPruning, BitEqualAcrossAllTypes) {
  auto pruned_db = OpenWideDb(true);
  auto plain_db = OpenWideDb(false);

  const int32_t day0 = MakeDate(2013, 1, 1);
  struct Case {
    const char* name;
    std::function<PlanPtr()> plan;
  };
  std::vector<Case> cases = {
      {"int32_window",
       [] {
         return PlanNode::Select(
             WideScan(),
             Expr::And(Expr::Ge(Expr::Column("i"),
                                Expr::Literal(static_cast<int32_t>(2000))),
                       Expr::Lt(Expr::Column("i"),
                                Expr::Literal(static_cast<int32_t>(3000)))));
       }},
      {"int64_window",
       [] {
         return PlanNode::Select(
             WideScan(),
             Expr::And(Expr::Gt(Expr::Column("l"),
                                Expr::Literal(static_cast<int64_t>(100000))),
                       Expr::Le(Expr::Column("l"),
                                Expr::Literal(static_cast<int64_t>(140000)))));
       }},
      {"double_tail",
       [] {
         return PlanNode::Select(
             WideScan(), Expr::Ge(Expr::Column("d"), Expr::Literal(1900.0)));
       }},
      {"string_window",
       [] {
         return PlanNode::Select(
             WideScan(),
             Expr::And(Expr::Ge(Expr::Column("s"),
                                Expr::Literal(std::string("k004000"))),
                       Expr::Lt(Expr::Column("s"),
                                Expr::Literal(std::string("k004200")))));
       }},
      {"date_head",
       [day0] {
         return PlanNode::Select(
             WideScan(), Expr::Lt(Expr::Column("dt"),
                                  Expr::Literal(day0 + 100)));
       }},
      // Bool columns carry no range hints; pruning still comes from the
      // int conjunct while the bool filter must keep applying.
      {"bool_and_int",
       [] {
         return PlanNode::Select(
             WideScan(),
             Expr::And(Expr::Lt(Expr::Column("i"),
                                Expr::Literal(static_cast<int32_t>(512))),
                       Expr::Eq(Expr::Column("b"), Expr::Literal(true))));
       }},
  };

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    auto ps = pruned_db->Connect({});
    auto us = plain_db->Connect({});
    Result pr = ps->Execute(c.plan());
    Result ur = us->Execute(c.plan());
    ASSERT_TRUE(pr.ok()) << pr.status().ToString();
    ASSERT_TRUE(ur.ok()) << ur.status().ToString();
    EXPECT_EQ(RowMultiset(*pr.table()), RowMultiset(*ur.table()));
    EXPECT_GT(pr.table()->num_rows(), 0);
    // The unpruned scan reads every block; the pruned scan accounts for
    // the same universe as scanned + pruned and actually skips blocks.
    EXPECT_EQ(ur.trace().blocks_pruned, 0);
    EXPECT_EQ(pr.trace().blocks_scanned + pr.trace().blocks_pruned,
              ur.trace().blocks_scanned);
    EXPECT_GT(pr.trace().blocks_pruned, 0);
  }
}

// ---------------------------------------------------------------------------
// Column codecs
// ---------------------------------------------------------------------------

TEST(Compression, PicksExpectedCodecAndRoundTrips) {
  struct Case {
    const char* name;
    ColumnPtr col;
    ColumnEncoding expected;
  };
  std::vector<int32_t> constant(4096, 42);
  std::vector<int64_t> ascending;
  for (int i = 0; i < 4096; ++i) ascending.push_back(1000000 + i);
  std::vector<std::string> low_card;
  for (int i = 0; i < 4096; ++i) low_card.push_back("city-" + std::to_string(i % 8));
  std::vector<double> noise;
  for (int i = 0; i < 4096; ++i) {
    noise.push_back(static_cast<double>((i * 2654435761u) % 1000003) * 1.7e-3);
  }
  std::vector<int32_t> dates;
  for (int i = 0; i < 4096; ++i) dates.push_back(MakeDate(2013, 1, 1) + i);

  std::vector<Case> cases;
  cases.push_back({"constant_int32_rle",
                   TypedColumn<int32_t>(TypeId::kInt32, constant),
                   ColumnEncoding::kRle});
  cases.push_back({"ascending_int64_for",
                   TypedColumn<int64_t>(TypeId::kInt64, ascending),
                   ColumnEncoding::kFor});
  cases.push_back({"low_card_string_dict",
                   TypedColumn<std::string>(TypeId::kString, low_card),
                   ColumnEncoding::kDict});
  cases.push_back({"noise_double_raw",
                   TypedColumn<double>(TypeId::kDouble, noise),
                   ColumnEncoding::kRaw});
  cases.push_back({"dense_date_for",
                   TypedColumn<int32_t>(TypeId::kDate, dates),
                   ColumnEncoding::kFor});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    EncodedColumn enc = EncodeColumn(*c.col);
    EXPECT_EQ(enc.encoding, c.expected) << EncodingName(enc.encoding);
    EXPECT_EQ(enc.num_rows, c.col->size());
    ColumnPtr back;
    ASSERT_TRUE(DecodeColumn(enc, &back).ok());
    EXPECT_TRUE(ColumnsBitEqual(*c.col, *back));
  }
}

TEST(Compression, EveryCodecRoundTripsEveryLegalType) {
  std::vector<uint8_t> bools;
  std::vector<int32_t> ints;
  std::vector<int64_t> longs;
  std::vector<double> doubles;
  std::vector<std::string> strings;
  for (int i = 0; i < 2000; ++i) {
    bools.push_back(i % 3 == 0);
    ints.push_back(i / 7 - 50);
    longs.push_back(static_cast<int64_t>(i / 5) * 1000);
    doubles.push_back((i / 11) * 0.5 - 3.0);
    strings.push_back("v" + std::to_string(i % 29));
  }
  std::vector<ColumnPtr> cols = {
      TypedColumn<uint8_t>(TypeId::kBool, bools),
      TypedColumn<int32_t>(TypeId::kInt32, ints),
      TypedColumn<int64_t>(TypeId::kInt64, longs),
      TypedColumn<double>(TypeId::kDouble, doubles),
      TypedColumn<std::string>(TypeId::kString, strings),
      TypedColumn<int32_t>(TypeId::kDate, ints),
  };
  for (const ColumnPtr& col : cols) {
    for (ColumnEncoding e :
         {ColumnEncoding::kRaw, ColumnEncoding::kRle, ColumnEncoding::kDict,
          ColumnEncoding::kFor}) {
      SCOPED_TRACE(StrFormat("%s as %s", TypeName(col->type()),
                             EncodingName(e)));
      EncodedColumn enc;
      Status st = EncodeColumnAs(*col, e, &enc);
      const bool for_illegal =
          e == ColumnEncoding::kFor && (col->type() == TypeId::kDouble ||
                                        col->type() == TypeId::kString ||
                                        col->type() == TypeId::kBool);
      const bool dict_illegal =
          e == ColumnEncoding::kDict && (col->type() == TypeId::kDouble ||
                                         col->type() == TypeId::kBool);
      if (for_illegal || dict_illegal) {
        EXPECT_FALSE(st.ok());
        continue;
      }
      ASSERT_TRUE(st.ok()) << st.ToString();
      ColumnPtr back;
      ASSERT_TRUE(DecodeColumn(enc, &back).ok());
      EXPECT_TRUE(ColumnsBitEqual(*col, *back));
    }
  }
}

TEST(Compression, DoubleBitPatternsSurviveRle) {
  std::vector<double> v;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 64; ++i) v.push_back(nan);
  for (int i = 0; i < 64; ++i) v.push_back(-0.0);
  for (int i = 0; i < 64; ++i) v.push_back(0.0);
  ColumnPtr col = TypedColumn<double>(TypeId::kDouble, v);

  EncodedColumn enc;
  ASSERT_TRUE(EncodeColumnAs(*col, ColumnEncoding::kRle, &enc).ok());
  ColumnPtr back;
  ASSERT_TRUE(DecodeColumn(enc, &back).ok());
  // Bit comparison distinguishes -0.0 from 0.0 and preserves NaN, which
  // value comparison cannot.
  EXPECT_TRUE(ColumnsBitEqual(*col, *back));
}

TEST(Compression, SelectRangeEncodedMatchesDecodeThenFilter) {
  std::vector<int32_t> sawtooth;
  for (int i = 0; i < 3000; ++i) sawtooth.push_back(i / 100);
  std::vector<std::string> cities;
  for (int i = 0; i < 3000; ++i) cities.push_back("c" + std::to_string(i % 6));
  std::vector<int64_t> keys;
  for (int i = 0; i < 3000; ++i) keys.push_back(7000 + i);
  std::vector<double> vals;
  for (int i = 0; i < 3000; ++i) vals.push_back((i * 7919) % 997 * 0.25);

  struct Case {
    ColumnPtr col;
    ColumnEncoding enc;
    ColumnInterval range;
  };
  std::vector<Case> cases;
  cases.push_back({TypedColumn<int32_t>(TypeId::kInt32, sawtooth),
                   ColumnEncoding::kRle,
                   Between(static_cast<int32_t>(5), true,
                           static_cast<int32_t>(20), false)});
  cases.push_back({TypedColumn<std::string>(TypeId::kString, cities),
                   ColumnEncoding::kDict,
                   Between(std::string("c1"), true, std::string("c4"), true)});
  cases.push_back({TypedColumn<int64_t>(TypeId::kInt64, keys),
                   ColumnEncoding::kFor,
                   Between(static_cast<int64_t>(7500), false,
                           static_cast<int64_t>(8500), true)});
  cases.push_back({TypedColumn<double>(TypeId::kDouble, vals),
                   ColumnEncoding::kRaw, AtLeast(100.0)});
  // Integer-empty open gap (4, 5): no int32 fits, so nothing selects.
  cases.push_back({TypedColumn<int32_t>(TypeId::kInt32, sawtooth),
                   ColumnEncoding::kRle,
                   Between(static_cast<int32_t>(4), false,
                           static_cast<int32_t>(5), false)});
  // Unbounded both ends selects everything.
  cases.push_back({TypedColumn<int64_t>(TypeId::kInt64, keys),
                   ColumnEncoding::kFor, ColumnInterval{}});
  // Mixed-type numeric bound (double literal against int column).
  cases.push_back({TypedColumn<int32_t>(TypeId::kInt32, sawtooth),
                   ColumnEncoding::kRle, Below(12.5)});

  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(StrFormat("case %zu (%s)", i,
                           EncodingName(cases[i].enc)));
    EncodedColumn enc;
    ASSERT_TRUE(EncodeColumnAs(*cases[i].col, cases[i].enc, &enc).ok());
    std::vector<int32_t> sel;
    ASSERT_TRUE(SelectRangeEncoded(enc, cases[i].range, &sel).ok());
    EXPECT_EQ(sel, ReferenceSelect(*cases[i].col, cases[i].range));
  }
}

TEST(Compression, CorruptPayloadsAreRecoverableErrors) {
  std::vector<int32_t> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i / 10);
  ColumnPtr col = TypedColumn<int32_t>(TypeId::kInt32, v);

  for (ColumnEncoding e :
       {ColumnEncoding::kRaw, ColumnEncoding::kRle, ColumnEncoding::kDict,
        ColumnEncoding::kFor}) {
    SCOPED_TRACE(EncodingName(e));
    EncodedColumn enc;
    ASSERT_TRUE(EncodeColumnAs(*col, e, &enc).ok());

    ColumnPtr out;
    // Truncation at every interesting boundary must error, not abort.
    EncodedColumn truncated = enc;
    truncated.payload.resize(truncated.payload.size() / 2);
    EXPECT_FALSE(DecodeColumn(truncated, &out).ok());
    truncated.payload.clear();
    EXPECT_FALSE(DecodeColumn(truncated, &out).ok());

    // A length field inflated to claim more data than exists must be
    // caught by bounds checks before any allocation happens.
    EncodedColumn inflated = enc;
    if (inflated.payload.size() >= 4) {
      std::memset(&inflated.payload[0], 0xff, 4);
      ColumnPtr dummy;
      Status st = DecodeColumn(inflated, &dummy);
      if (st.ok()) {
        // If the codec tolerated the patch the result must still be a
        // complete column (never a partial/oversized one).
        EXPECT_EQ(dummy->size(), col->size());
      }
      std::vector<int32_t> sel;
      // Encoded-selection must survive the same corruption.
      (void)SelectRangeEncoded(inflated, AtLeast(static_cast<int32_t>(5)),
                               &sel);
    }
  }

  // Trailing garbage after a well-formed image is rejected.
  EncodedColumn enc;
  ASSERT_TRUE(EncodeColumnAs(*col, ColumnEncoding::kRle, &enc).ok());
  enc.payload += "extra";
  ColumnPtr out;
  EXPECT_FALSE(DecodeColumn(enc, &out).ok());
}

// ---------------------------------------------------------------------------
// Spill format v2 and v1 compatibility
// ---------------------------------------------------------------------------

TablePtr MakeCompressibleTable(int rows) {
  Schema s({{"k", TypeId::kInt64}, {"tag", TypeId::kString},
            {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int64_t>(i),
                  std::string("tag-") + std::to_string(i % 4),
                  (i / 64) * 1.5});
  }
  return t;
}

SpillFileMeta MakeMeta(const Table& t) {
  SpillFileMeta meta;
  meta.canon_key = "4{select:x}(0{scan:w})";
  meta.column_names = t.schema().Names();
  for (const Field& f : t.schema().fields()) {
    meta.column_types.push_back(f.type);
  }
  meta.num_rows = t.num_rows();
  meta.bcost_ms = 3.5;
  meta.h = 2.0;
  meta.base_tables = {"w"};
  return meta;
}

bool TablesBitEqual(const Table& a, const Table& b) {
  if (a.num_columns() != b.num_columns()) return false;
  for (int i = 0; i < a.num_columns(); ++i) {
    if (!ColumnsBitEqual(*a.column(i), *b.column(i))) return false;
  }
  return true;
}

TEST(SpillV2, V1FilesRemainReadable) {
  TempSpillDir dir;
  TablePtr t = MakeCompressibleTable(3000);
  const std::string path = dir.path() + "/v1.spill";
  SpillWriteOptions v1;
  v1.version = kSpillFormatVersionV1;
  ASSERT_TRUE(WriteSpillFile(path, *t, MakeMeta(*t), v1).ok());

  SpillFileMeta meta;
  TablePtr back;
  ASSERT_TRUE(ReadSpillTable(path, &meta, &back).ok());
  EXPECT_EQ(meta.format_version, kSpillFormatVersionV1);
  EXPECT_EQ(meta.raw_bytes, 0);  // v1 headers carry no raw size
  EXPECT_EQ(back->num_rows(), t->num_rows());
  EXPECT_TRUE(TablesBitEqual(*t, *back));
}

TEST(SpillV2, CompressedFilesAreSmallerAndBitEqual) {
  TempSpillDir dir;
  TablePtr t = MakeCompressibleTable(20000);
  const std::string v1_path = dir.path() + "/a.v1.spill";
  const std::string v2_path = dir.path() + "/a.v2.spill";
  SpillWriteOptions v1;
  v1.version = kSpillFormatVersionV1;
  ASSERT_TRUE(WriteSpillFile(v1_path, *t, MakeMeta(*t), v1).ok());
  ASSERT_TRUE(WriteSpillFile(v2_path, *t, MakeMeta(*t)).ok());

  const auto v1_size = fs::file_size(v1_path);
  const auto v2_size = fs::file_size(v2_path);
  EXPECT_LT(v2_size, v1_size);

  SpillFileMeta meta;
  TablePtr back;
  ASSERT_TRUE(ReadSpillTable(v2_path, &meta, &back).ok());
  EXPECT_EQ(meta.format_version, kSpillFormatVersion);
  EXPECT_GT(meta.raw_bytes, static_cast<int64_t>(v2_size));
  EXPECT_TRUE(TablesBitEqual(*t, *back));

  // The header fast path reports the same raw size without a full read.
  SpillFileMeta header;
  ASSERT_TRUE(ReadSpillMeta(v2_path, &header).ok());
  EXPECT_EQ(header.raw_bytes, meta.raw_bytes);
}

TEST(SpillV2, UncompressedV2OptionRoundTrips) {
  TempSpillDir dir;
  TablePtr t = MakeCompressibleTable(2000);
  const std::string path = dir.path() + "/raw.v2.spill";
  SpillWriteOptions opts;
  opts.compress = false;
  ASSERT_TRUE(WriteSpillFile(path, *t, MakeMeta(*t), opts).ok());
  SpillFileMeta meta;
  TablePtr back;
  ASSERT_TRUE(ReadSpillTable(path, &meta, &back).ok());
  EXPECT_EQ(meta.format_version, kSpillFormatVersion);
  EXPECT_GT(meta.raw_bytes, 0);
  EXPECT_TRUE(TablesBitEqual(*t, *back));
}

TEST(SpillV2, CorruptionIsRecoverable) {
  TempSpillDir dir;
  TablePtr t = MakeCompressibleTable(3000);
  const std::string path = dir.path() + "/corrupt.spill";
  ASSERT_TRUE(WriteSpillFile(path, *t, MakeMeta(*t)).ok());
  const auto size = fs::file_size(path);

  // Flip one payload byte: the checksum (verified before any decoding)
  // must reject the file.
  {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size) - 64, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }
  SpillFileMeta meta;
  TablePtr back;
  Status st = ReadSpillTable(path, &meta, &back);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("checksum"), std::string::npos)
      << st.ToString();

  // Truncation is likewise a recoverable error.
  ASSERT_TRUE(WriteSpillFile(path, *t, MakeMeta(*t)).ok());
  fs::resize_file(path, size / 2);
  EXPECT_FALSE(ReadSpillTable(path, &meta, &back).ok());
}

// ---------------------------------------------------------------------------
// Calibrated cost model
// ---------------------------------------------------------------------------

TEST(CostModel, IsAPureFunctionOfItsInputs) {
  CostModel m(1.0);
  EXPECT_EQ(m.machine_factor(), 1.0);
  const double one = m.OperatorMs(OpType::kScan, 1000, 8.0);
  EXPECT_GT(one, 0.0);
  EXPECT_EQ(m.OperatorMs(OpType::kScan, 1000, 8.0), one);
  // Linear in rows and width...
  EXPECT_DOUBLE_EQ(m.OperatorMs(OpType::kScan, 2000, 8.0), 2 * one);
  EXPECT_DOUBLE_EQ(m.OperatorMs(OpType::kScan, 1000, 16.0), 2 * one);
  // ...with heavier constants for heavier operators...
  EXPECT_GT(m.OperatorMs(OpType::kHashJoin, 1000, 8.0), one);
  EXPECT_GT(m.OperatorMs(OpType::kAggregate, 1000, 8.0),
            m.OperatorMs(OpType::kSelect, 1000, 8.0));
  // ...and a log factor on sorts: 1024x the rows costs 2048x
  // (log2 doubles from 10 to 20), i.e. strictly superlinear.
  EXPECT_GT(m.OperatorMs(OpType::kOrderBy, 1 << 20, 8.0),
            1536 * m.OperatorMs(OpType::kOrderBy, 1 << 10, 8.0));
  // Machine factor scales everything proportionally.
  CostModel fast(0.5);
  EXPECT_DOUBLE_EQ(fast.OperatorMs(OpType::kScan, 1000, 8.0), one / 2);
}

TEST(CostModel, GlobalCalibrationIsStableWithinProcess) {
  const CostModel& a = CostModel::Global();
  const CostModel& b = CostModel::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.machine_factor(), 0.25);
  EXPECT_LE(a.machine_factor(), 20.0);
}

/// Two engines running the same workload must annotate identical bcost
/// values — the property wall-clock refresh could not provide.
TEST(CostModel, IdenticalWorkloadsRankIdentically) {
  auto run = [](Database* db) {
    auto s = db->Connect({});
    auto window = [](int32_t lo, int32_t hi) {
      return PlanNode::Select(
          WideScan(),
          Expr::And(Expr::Ge(Expr::Column("i"), Expr::Literal(lo)),
                    Expr::Lt(Expr::Column("i"), Expr::Literal(hi))));
    };
    for (int pass = 0; pass < 2; ++pass) {
      for (int32_t lo : {0, 1000, 2000, 3000}) {
        Result r = s->Execute(window(lo, lo + 1500));
        RDB_CHECK(r.ok());
      }
    }
  };

  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kHistory;
  auto db1 = Database::OpenOrDie(options);
  auto db2 = Database::OpenOrDie(options);
  RDB_CHECK(db1->CreateTable("w", MakeWideTable()).ok());
  RDB_CHECK(db2->CreateTable("w", MakeWideTable()).ok());
  run(db1.get());
  run(db2.get());

  RecyclerGraph& g1 = db1->recycler().graph();
  RecyclerGraph& g2 = db2->recycler().graph();
  std::shared_lock<std::shared_mutex> l1(g1.mutex());
  std::shared_lock<std::shared_mutex> l2(g2.mutex());
  ASSERT_EQ(g1.nodes().size(), g2.nodes().size());
  ASSERT_GT(g1.nodes().size(), 1u);
  int annotated = 0;
  for (size_t i = 0; i < g1.nodes().size(); ++i) {
    const RGNode* n1 = g1.nodes()[i].get();
    const RGNode* n2 = g2.nodes()[i].get();
    EXPECT_EQ(n1->type, n2->type);
    EXPECT_EQ(n1->rows.load(), n2->rows.load());
    EXPECT_EQ(n1->has_bcost.load(), n2->has_bcost.load());
    if (n1->has_bcost.load()) {
      ++annotated;
      // Exact equality: the model is deterministic, so the engines may
      // not drift apart even in the last bit.
      EXPECT_EQ(n1->bcost_ms.load(), n2->bcost_ms.load())
          << "node " << i << " diverged";
      EXPECT_EQ(db1->recycler().BenefitOf(n1), db2->recycler().BenefitOf(n2));
    }
  }
  EXPECT_GT(annotated, 0);
}

// ---------------------------------------------------------------------------
// Concurrency: pruned scans + compressing cold tier under contention
// ---------------------------------------------------------------------------

TEST(SpeedPackStress, ConcurrentPrunedQueriesWithCompressedSpills) {
  TempSpillDir dir;
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = 64 << 10;  // force hot-tier churn
  options.recycler.spill_dir = dir.path();
  options.recycler.cold_tier_capacity_bytes = 256ll << 20;
  auto db = Database::OpenOrDie(options);
  RDB_CHECK(db->CreateTable("w", MakeWideTable()).ok());

  auto window = [](int32_t lo, int32_t hi) {
    return PlanNode::Select(
        WideScan(),
        Expr::And(Expr::Ge(Expr::Column("i"), Expr::Literal(lo)),
                  Expr::Lt(Expr::Column("i"), Expr::Literal(hi))));
  };

  // Precompute ground truth through the recycler-bypass path.
  constexpr int kWindows = 8;
  std::vector<std::multiset<std::string>> expected(kWindows);
  {
    SessionOptions so;
    so.bypass_recycler = true;
    auto ref = db->Connect(so);
    for (int w = 0; w < kWindows; ++w) {
      Result r = ref->Execute(window(w * 1000, w * 1000 + 800));
      ASSERT_TRUE(r.ok());
      expected[w] = RowMultiset(*r.table());
    }
  }

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 24;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      auto s = db->Connect({});
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const int w = (tid * 3 + q) % kWindows;
        Result r = s->Execute(window(w * 1000, w * 1000 + 800));
        if (!r.ok() || RowMultiset(*r.table()) != expected[w]) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Zone maps pruned under contention, and the counters saw it.
  EXPECT_GT(db->counters().blocks_pruned.load(), 0);
  EXPECT_GT(db->counters().blocks_scanned.load(), 0);

  // Push everything still beneficial out to disk and verify the
  // compressed cold entries report a compression win.
  db->FlushCache();
  if (db->graph_stats().num_cold > 0) {
    EXPECT_GT(db->counters().cold_spill_stored_bytes.load(), 0);
    EXPECT_GE(db->counters().cold_spill_raw_bytes.load(),
              db->counters().cold_spill_stored_bytes.load());
  }
}

}  // namespace
}  // namespace recycledb
