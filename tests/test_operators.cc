// Unit tests for src/exec operators: scan, filter, project, limit, union,
// sort, top-N, hash aggregate, hash join (all kinds), progress meters.
#include <gtest/gtest.h>

#include "exec/executor.h"
#include "exec/operators.h"
#include "test_util.h"

namespace recycledb {
namespace {

class OperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // orders-like table: key, group, value.
    Schema s({{"k", TypeId::kInt32},
              {"g", TypeId::kString},
              {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 5000; ++i) {
      t->AppendRow({int32_t{i}, std::string(i % 3 == 0 ? "a" : "b"),
                    static_cast<double>(i % 100)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());

    Schema dim({{"dk", TypeId::kInt32}, {"name", TypeId::kString}});
    TablePtr d = MakeTable(dim);
    // Only even keys < 100 appear in the dimension.
    for (int i = 0; i < 100; i += 2) {
      d->AppendRow({int32_t{i}, std::string("dim") + std::to_string(i)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("dim", d).ok());
  }

  TablePtr Run(PlanPtr plan) {
    plan->Bind(catalog_);
    Executor exec(&catalog_);
    return exec.Run(plan).table;
  }

  Catalog catalog_;
};

TEST_F(OperatorTest, ScanAllRowsInBatches) {
  TablePtr r = Run(PlanNode::Scan("t", {"k"}));
  EXPECT_EQ(r->num_rows(), 5000);
  EXPECT_EQ(std::get<int32_t>(r->Get(4999, 0)), 4999);
}

TEST_F(OperatorTest, FilterSelectivity) {
  TablePtr r = Run(PlanNode::Select(
      PlanNode::Scan("t", {"k", "g"}),
      Expr::Eq(Expr::Column("g"), Expr::Literal(std::string("a")))));
  EXPECT_EQ(r->num_rows(), 1667);  // ceil(5000/3)
}

TEST_F(OperatorTest, FilterNoMatches) {
  TablePtr r = Run(PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{0}))));
  EXPECT_EQ(r->num_rows(), 0);
}

TEST_F(OperatorTest, ProjectComputesExpressions) {
  TablePtr r = Run(PlanNode::Project(
      PlanNode::Scan("t", {"k", "v"}),
      {{Expr::Arith(ArithOp::kAdd, Expr::Column("v"), Expr::Literal(1.0)),
        "v1"}}));
  EXPECT_EQ(r->num_rows(), 5000);
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(5, 0)), 6.0);
}

TEST_F(OperatorTest, LimitStopsEarly) {
  TablePtr r = Run(PlanNode::Limit(PlanNode::Scan("t", {"k"}), 10));
  EXPECT_EQ(r->num_rows(), 10);
  // Limit smaller than one batch and larger than the table both work.
  EXPECT_EQ(Run(PlanNode::Limit(PlanNode::Scan("t", {"k"}), 100000))
                ->num_rows(),
            5000);
}

TEST_F(OperatorTest, UnionAllConcatenates) {
  TablePtr r = Run(PlanNode::UnionAll(
      {PlanNode::Scan("t", {"k"}), PlanNode::Scan("t", {"k"})}));
  EXPECT_EQ(r->num_rows(), 10000);
}

TEST_F(OperatorTest, OrderBySortsAscDesc) {
  TablePtr r = Run(PlanNode::OrderBy(
      PlanNode::Scan("t", {"v", "k"}),
      {{"v", false}, {"k", true}}));
  ASSERT_EQ(r->num_rows(), 5000);
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(0, 0)), 99.0);
  // Within equal v, k ascends.
  EXPECT_LT(std::get<int32_t>(r->Get(0, 1)), std::get<int32_t>(r->Get(1, 1)));
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(4999, 0)), 0.0);
}

TEST_F(OperatorTest, TopNMatchesFullSortPrefix) {
  PlanPtr sorted = PlanNode::OrderBy(PlanNode::Scan("t", {"v", "k"}),
                                     {{"v", true}, {"k", true}});
  PlanPtr top = PlanNode::TopN(PlanNode::Scan("t", {"v", "k"}),
                               {{"v", true}, {"k", true}}, 37);
  TablePtr rs = Run(sorted);
  TablePtr rt = Run(top);
  ASSERT_EQ(rt->num_rows(), 37);
  for (int64_t i = 0; i < 37; ++i) {
    EXPECT_EQ(recycledb::testing::RowKey(*rs, i),
              recycledb::testing::RowKey(*rt, i));
  }
}

TEST_F(OperatorTest, TopNLargerThanInput) {
  TablePtr r = Run(PlanNode::TopN(
      PlanNode::Select(PlanNode::Scan("t", {"k"}),
                       Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{5}))),
      {{"k", false}}, 100));
  EXPECT_EQ(r->num_rows(), 5);
  EXPECT_EQ(std::get<int32_t>(r->Get(0, 0)), 4);
}

TEST_F(OperatorTest, HashAggGlobal) {
  TablePtr r = Run(PlanNode::Aggregate(
      PlanNode::Scan("t", {"v"}), {},
      {{AggFunc::kSum, Expr::Column("v"), "s"},
       {AggFunc::kCount, Expr::Literal(int64_t{1}), "c"},
       {AggFunc::kMin, Expr::Column("v"), "mn"},
       {AggFunc::kMax, Expr::Column("v"), "mx"},
       {AggFunc::kAvg, Expr::Column("v"), "av"}}));
  ASSERT_EQ(r->num_rows(), 1);
  // 5000 rows of i%100: 50 full cycles of 0..99 -> sum = 50*4950.
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(0, 0)), 50 * 4950.0);
  EXPECT_EQ(std::get<int64_t>(r->Get(0, 1)), 5000);
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(0, 2)), 0.0);
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(0, 3)), 99.0);
  EXPECT_DOUBLE_EQ(std::get<double>(r->Get(0, 4)), 49.5);
}

TEST_F(OperatorTest, HashAggGlobalOnEmptyInputEmitsOneRow) {
  TablePtr r = Run(PlanNode::Aggregate(
      PlanNode::Select(PlanNode::Scan("t", {"v"}),
                       Expr::Lt(Expr::Column("v"), Expr::Literal(-1.0))),
      {}, {{AggFunc::kCount, Expr::Literal(int64_t{1}), "c"}}));
  ASSERT_EQ(r->num_rows(), 1);
  EXPECT_EQ(std::get<int64_t>(r->Get(0, 0)), 0);
}

TEST_F(OperatorTest, HashAggGrouped) {
  TablePtr r = Run(PlanNode::Aggregate(
      PlanNode::Scan("t", {"g", "v"}), {"g"},
      {{AggFunc::kCount, Expr::Literal(int64_t{1}), "c"}}));
  ASSERT_EQ(r->num_rows(), 2);
  int64_t total = 0;
  for (int64_t i = 0; i < 2; ++i) total += std::get<int64_t>(r->Get(i, 1));
  EXPECT_EQ(total, 5000);
}

TEST_F(OperatorTest, HashAggIntegerSumStaysIntegral) {
  TablePtr r = Run(PlanNode::Aggregate(
      PlanNode::Scan("t", {"k"}), {},
      {{AggFunc::kSum, Expr::Column("k"), "s"}}));
  EXPECT_EQ(std::get<int64_t>(r->Get(0, 0)),
            4999ll * 5000 / 2);
}

TEST_F(OperatorTest, HashJoinInner) {
  TablePtr r = Run(PlanNode::HashJoin(
      PlanNode::Scan("t", {"k", "v"}), PlanNode::Scan("dim", {"dk", "name"}),
      JoinKind::kInner, {"k"}, {"dk"}));
  EXPECT_EQ(r->num_rows(), 50);  // even keys < 100
  EXPECT_EQ(r->schema().Names(),
            (std::vector<std::string>{"k", "v", "dk", "name"}));
}

TEST_F(OperatorTest, HashJoinSemiAnti) {
  PlanPtr probe = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{100})));
  TablePtr semi = Run(PlanNode::HashJoin(probe, PlanNode::Scan("dim", {"dk"}),
                                         JoinKind::kSemi, {"k"}, {"dk"}));
  EXPECT_EQ(semi->num_rows(), 50);
  TablePtr anti = Run(PlanNode::HashJoin(probe, PlanNode::Scan("dim", {"dk"}),
                                         JoinKind::kAnti, {"k"}, {"dk"}));
  EXPECT_EQ(anti->num_rows(), 50);  // odd keys < 100
}

TEST_F(OperatorTest, HashJoinLeftOuterPadsMisses) {
  PlanPtr probe = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{4})));
  TablePtr r = Run(PlanNode::HashJoin(probe,
                                      PlanNode::Scan("dim", {"dk", "name"}),
                                      JoinKind::kLeftOuter, {"k"}, {"dk"}));
  ASSERT_EQ(r->num_rows(), 4);
  // Odd keys have no dim match: padded with defaults (0 / "").
  auto rows = recycledb::testing::RowMultiset(*r);
  EXPECT_TRUE(rows.count("1|0|''|") == 1) << r->ToString();
}

TEST_F(OperatorTest, HashJoinDuplicateBuildKeysMultiply) {
  Schema s({{"bk", TypeId::kInt32}});
  TablePtr dup = MakeTable(s);
  dup->AppendRow({int32_t{2}});
  dup->AppendRow({int32_t{2}});
  ASSERT_TRUE(catalog_.RegisterTable("dup", dup).ok());
  PlanPtr probe = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Eq(Expr::Column("k"), Expr::Literal(int64_t{2})));
  TablePtr r = Run(PlanNode::HashJoin(probe, PlanNode::Scan("dup", {"bk"}),
                                      JoinKind::kInner, {"k"}, {"bk"}));
  EXPECT_EQ(r->num_rows(), 2);
}

TEST_F(OperatorTest, MultiKeyJoin) {
  // Join t with itself on (k, g): every row matches exactly itself.
  PlanPtr left = PlanNode::Scan("t", {"k", "g"});
  PlanPtr right = PlanNode::Project(
      PlanNode::Scan("t", {"k", "g"}),
      {{Expr::Column("k"), "k2"}, {Expr::Column("g"), "g2"}});
  TablePtr r = Run(PlanNode::HashJoin(left, right, JoinKind::kInner,
                                      {"k", "g"}, {"k2", "g2"}));
  EXPECT_EQ(r->num_rows(), 5000);
}

TEST_F(OperatorTest, OperatorStatsCollected) {
  PlanPtr plan = PlanNode::Select(
      PlanNode::Scan("t", {"k"}),
      Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{10})));
  plan->Bind(catalog_);
  Executor exec(&catalog_);
  ExecResult r = exec.Run(plan);
  ASSERT_EQ(r.node_runtime.size(), 2u);
  const NodeRuntime& sel_rt = r.node_runtime.at(plan.get());
  EXPECT_EQ(sel_rt.rows_out, 10);
  // k is appended in ascending order, so the zone maps prune every block
  // past the first for `k < 10`: the scan reads exactly one 1024-row
  // block of the five.
  const NodeRuntime& scan_rt = r.node_runtime.at(plan->child().get());
  EXPECT_EQ(scan_rt.rows_out, 1024);
  EXPECT_EQ(r.blocks_scanned, 1);
  EXPECT_EQ(r.blocks_pruned, 4);
  // Inclusive timing: the parent's time includes the child's.
  EXPECT_GE(sel_rt.inclusive_ms, 0.0);
}

TEST_F(OperatorTest, ScanProgressAdvances) {
  TablePtr t = catalog_.GetTable("t");
  ScanOp scan(Schema({{"k", TypeId::kInt32}}), t, {0});
  scan.Open();
  EXPECT_DOUBLE_EQ(scan.Progress(), 0.0);
  Batch b;
  ASSERT_TRUE(scan.Next(&b));
  EXPECT_GT(scan.Progress(), 0.0);
  EXPECT_LT(scan.Progress(), 1.0);
  while (scan.Next(&b)) {
  }
  EXPECT_DOUBLE_EQ(scan.Progress(), 1.0);
}

}  // namespace
}  // namespace recycledb
