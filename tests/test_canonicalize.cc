// Tests for the canonicalizing rewrite pass: expression rules (constant
// folding that mirrors Eval, comparison normalization, NOT elimination,
// AND/OR flattening with deterministic ordering, per-column range
// merging, IN-list normalization), plan rules (Select merging and
// pushdown, identity-Project elimination, Limit collapsing), idempotence
// and pointer stability, result-preserving equivalence of syntactic
// variants, the cache-sharing ablation, and the CachedScan cache-key
// (cold-tier identity) surfaced through Explain.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "plan/canonicalize.h"
#include "recycledb/recycledb.h"
#include "test_util.h"

namespace recycledb {
namespace {

using recycledb::testing::RowMultiset;

std::string Fp(const ExprPtr& e) { return e->Fingerprint(nullptr); }
std::string CanonFp(const ExprPtr& e) { return Fp(CanonicalizeExpr(e)); }

ExprPtr Col(const char* name) { return Expr::Column(name); }

// ---------------------------------------------------------------------------
// Expression rules
// ---------------------------------------------------------------------------

TEST(CanonicalizeExprTest, FlipsLiteralToTheRight) {
  // `5 < x` -> `x > 5`; `5 >= x` -> `x <= 5`; `5 = x` -> `x = 5`.
  EXPECT_EQ(CanonFp(Expr::Lt(Expr::Literal(5), Col("x"))),
            Fp(Expr::Gt(Col("x"), Expr::Literal(5))));
  EXPECT_EQ(CanonFp(Expr::Ge(Expr::Literal(5), Col("x"))),
            Fp(Expr::Le(Col("x"), Expr::Literal(5))));
  EXPECT_EQ(CanonFp(Expr::Eq(Expr::Literal(5), Col("x"))),
            Fp(Expr::Eq(Col("x"), Expr::Literal(5))));
}

TEST(CanonicalizeExprTest, FoldsArithmeticLikeEval) {
  // int32 + int32 stays int32.
  EXPECT_EQ(CanonFp(Expr::Arith(ArithOp::kAdd, Expr::Literal(2000),
                                Expr::Literal(10))),
            Fp(Expr::Literal(2010)));
  // Division by zero yields 0 in every numeric type (Eval's rule).
  EXPECT_EQ(CanonFp(Expr::Arith(ArithOp::kDiv, Expr::Literal(7.0),
                                Expr::Literal(0.0))),
            Fp(Expr::Literal(0.0)));
  EXPECT_EQ(CanonFp(Expr::Arith(ArithOp::kDiv, Expr::Literal(int64_t{7}),
                                Expr::Literal(int64_t{0}))),
            Fp(Expr::Literal(int64_t{0})));
  // Mixed int/double promotes to double.
  EXPECT_EQ(CanonFp(Expr::Arith(ArithOp::kMul, Expr::Literal(2),
                                Expr::Literal(1.5))),
            Fp(Expr::Literal(3.0)));
  // Nested constant subtrees fold bottom-up: (2000 + 5) + 5 -> 2010.
  EXPECT_EQ(CanonFp(Expr::Arith(
                ArithOp::kAdd,
                Expr::Arith(ArithOp::kAdd, Expr::Literal(2000),
                            Expr::Literal(5)),
                Expr::Literal(5))),
            Fp(Expr::Literal(2010)));
}

TEST(CanonicalizeExprTest, FoldsComparisonsThroughDouble) {
  EXPECT_EQ(CanonFp(Expr::Lt(Expr::Literal(1), Expr::Literal(2))),
            Fp(Expr::Literal(true)));
  // Numeric comparison crosses int/double exactly as Eval does.
  EXPECT_EQ(CanonFp(Expr::Eq(Expr::Literal(2), Expr::Literal(2.0))),
            Fp(Expr::Literal(true)));
  EXPECT_EQ(CanonFp(Expr::Eq(Expr::Literal(std::string("a")),
                             Expr::Literal(std::string("b")))),
            Fp(Expr::Literal(false)));
}

TEST(CanonicalizeExprTest, EliminatesNotOverComparisons) {
  // NULL-free engine: NOT(a < b) is exactly a >= b.
  EXPECT_EQ(CanonFp(Expr::Not(Expr::Lt(Col("x"), Expr::Literal(5)))),
            Fp(Expr::Ge(Col("x"), Expr::Literal(5))));
  // Double negation disappears; NOT over LIKE flips the match kind.
  ExprPtr like = Expr::Like(LikeKind::kContains, Col("city"), "bur");
  ExprPtr once = CanonicalizeExpr(Expr::Not(like));
  ASSERT_EQ(once->kind(), ExprKind::kLike);
  EXPECT_EQ(once->like_kind(), LikeKind::kNotContains);
  EXPECT_EQ(CanonFp(Expr::Not(Expr::Not(like))), Fp(like));
}

TEST(CanonicalizeExprTest, ConjunctOrderIsDeterministic) {
  // Non-range conjuncts (no column-vs-literal interval shape) keep their
  // identity but land in one fingerprint-sorted order.
  ExprPtr p1 = Expr::Like(LikeKind::kContains, Col("city"), "bur");
  ExprPtr p2 = Expr::Eq(Col("a"), Col("b"));
  ExprPtr p3 = Expr::In(Col("g"), {Datum{1}, Datum{2}});
  std::string fp = CanonFp(Expr::And(p1, Expr::And(p2, p3)));
  EXPECT_EQ(CanonFp(Expr::And(Expr::And(p3, p1), p2)), fp);
  EXPECT_EQ(CanonFp(Expr::And(p2, Expr::And(p3, p1))), fp);
}

TEST(CanonicalizeExprTest, DeduplicatesConjuncts) {
  ExprPtr p = Expr::Like(LikeKind::kPrefix, Col("city"), "Ed");
  EXPECT_EQ(CanonFp(Expr::And(p, p)), Fp(p));
}

TEST(CanonicalizeExprTest, BoolIdentityAndAbsorbingElements) {
  ExprPtr p = Expr::Eq(Col("a"), Col("b"));
  EXPECT_EQ(CanonFp(Expr::And(p, Expr::Literal(true))), Fp(p));
  EXPECT_EQ(CanonFp(Expr::And(p, Expr::Literal(false))),
            Fp(Expr::Literal(false)));
  EXPECT_EQ(CanonFp(Expr::Or(p, Expr::Literal(false))), Fp(p));
  EXPECT_EQ(CanonFp(Expr::Or(p, Expr::Literal(true))),
            Fp(Expr::Literal(true)));
}

TEST(CanonicalizeExprTest, MergesPerColumnRanges) {
  // `x > 1 AND x > 2` -> `x > 2`.
  EXPECT_EQ(CanonFp(Expr::And(Expr::Gt(Col("x"), Expr::Literal(1.0)),
                              Expr::Gt(Col("x"), Expr::Literal(2.0)))),
            Fp(Expr::Gt(Col("x"), Expr::Literal(2.0))));
  // `x >= 5 AND x <= 5` -> `x = 5`.
  EXPECT_EQ(CanonFp(Expr::And(Expr::Ge(Col("x"), Expr::Literal(5)),
                              Expr::Le(Col("x"), Expr::Literal(5)))),
            Fp(Expr::Eq(Col("x"), Expr::Literal(5))));
  // Contradiction -> FALSE.
  EXPECT_EQ(CanonFp(Expr::And(Expr::Gt(Col("x"), Expr::Literal(9)),
                              Expr::Lt(Col("x"), Expr::Literal(1)))),
            Fp(Expr::Literal(false)));
  // Ranges on different columns merge independently.
  EXPECT_EQ(CanonFp(Expr::And(
                Expr::And(Expr::Gt(Col("x"), Expr::Literal(1.0)),
                          Expr::Lt(Col("y"), Expr::Literal(9.0))),
                Expr::Gt(Col("x"), Expr::Literal(4.0)))),
            CanonFp(Expr::And(Expr::Gt(Col("x"), Expr::Literal(4.0)),
                              Expr::Lt(Col("y"), Expr::Literal(9.0)))));
}

TEST(CanonicalizeExprTest, SortsAndDedupsInLists) {
  EXPECT_EQ(CanonFp(Expr::In(Col("g"), {Datum{3}, Datum{1}, Datum{3},
                                        Datum{2}})),
            Fp(Expr::In(Col("g"), {Datum{1}, Datum{2}, Datum{3}})));
}

TEST(CanonicalizeExprTest, IdempotentAndPointerStable) {
  std::vector<ExprPtr> exprs = {
      Expr::And(Expr::Gt(Col("x"), Expr::Literal(1.0)),
                Expr::Gt(Col("x"), Expr::Literal(2.0))),
      Expr::Not(Expr::Lt(Col("x"), Expr::Literal(5))),
      Expr::Lt(Expr::Literal(5), Col("x")),
      Expr::In(Col("g"), {Datum{3}, Datum{1}}),
  };
  for (const ExprPtr& e : exprs) {
    ExprPtr c = CanonicalizeExpr(e);
    // Second pass is the identity, by pointer.
    EXPECT_EQ(CanonicalizeExpr(c), c);
  }
  // An already-canonical input comes back as the same pointer.
  ExprPtr canonical = Expr::Gt(Col("x"), Expr::Literal(5));
  EXPECT_EQ(CanonicalizeExpr(canonical), canonical);
}

// ---------------------------------------------------------------------------
// Plan rules
// ---------------------------------------------------------------------------

PlanPtr TScan() { return PlanNode::Scan("t", {"a", "g", "v"}); }

std::string PlanCanonFp(const PlanPtr& p) {
  return CanonicalizePlan(p)->TemplateFingerprint();
}

TEST(CanonicalizePlanTest, MergesSelectChains) {
  ExprPtr p1 = Expr::Gt(Col("v"), Expr::Literal(10.0));
  ExprPtr p2 = Expr::Like(LikeKind::kContains, Col("g"), "x");
  EXPECT_EQ(PlanCanonFp(PlanNode::Select(PlanNode::Select(TScan(), p1), p2)),
            PlanCanonFp(PlanNode::Select(TScan(), Expr::And(p1, p2))));
}

TEST(CanonicalizePlanTest, DropsTautologicalSelect) {
  PlanPtr scan = TScan();
  PlanPtr canon = CanonicalizePlan(PlanNode::Select(scan, Expr::Literal(true)));
  EXPECT_EQ(canon, scan);  // the child itself, shared
}

TEST(CanonicalizePlanTest, PushesSelectBelowStableSort) {
  ExprPtr pred = Expr::Gt(Col("v"), Expr::Literal(10.0));
  std::vector<SortKey> keys{{"v", true}};
  EXPECT_EQ(
      PlanCanonFp(PlanNode::Select(PlanNode::OrderBy(TScan(), keys), pred)),
      PlanCanonFp(PlanNode::OrderBy(PlanNode::Select(TScan(), pred), keys)));
}

TEST(CanonicalizePlanTest, PushesSelectBelowRenameProject) {
  std::vector<ProjItem> items{{Col("v"), "val"}, {Col("g"), "grp"}};
  PlanPtr above = PlanNode::Select(PlanNode::Project(TScan(), items),
                                   Expr::Gt(Col("val"), Expr::Literal(3.0)));
  PlanPtr below = PlanNode::Project(
      PlanNode::Select(TScan(), Expr::Gt(Col("v"), Expr::Literal(3.0))),
      items);
  EXPECT_EQ(PlanCanonFp(above), PlanCanonFp(below));
}

TEST(CanonicalizePlanTest, EliminatesIdentityProject) {
  std::vector<ProjItem> identity{{Col("a"), "a"}, {Col("g"), "g"},
                                 {Col("v"), "v"}};
  EXPECT_EQ(PlanCanonFp(PlanNode::Project(TScan(), identity)),
            PlanCanonFp(TScan()));
}

TEST(CanonicalizePlanTest, ComposesRenameChains) {
  PlanPtr inner = PlanNode::Project(TScan(), {{Col("a"), "x"}});
  PlanPtr outer = PlanNode::Project(inner, {{Col("x"), "y"}});
  EXPECT_EQ(PlanCanonFp(outer),
            PlanCanonFp(PlanNode::Project(TScan(), {{Col("a"), "y"}})));
}

TEST(CanonicalizePlanTest, CollapsesNestedLimits) {
  EXPECT_EQ(PlanCanonFp(PlanNode::Limit(PlanNode::Limit(TScan(), 10), 5)),
            PlanCanonFp(PlanNode::Limit(TScan(), 5)));
  EXPECT_EQ(PlanCanonFp(PlanNode::Limit(PlanNode::Limit(TScan(), 5), 10)),
            PlanCanonFp(PlanNode::Limit(TScan(), 5)));
}

TEST(CanonicalizePlanTest, KeepsLimitOverOrderByAsIs) {
  // Limit(OrderBy) and TopN may surface different ties at the cut
  // boundary; the bit-identity contract forbids rewriting one into the
  // other.
  PlanPtr plan = PlanNode::Limit(PlanNode::OrderBy(TScan(), {{"v", true}}), 5);
  EXPECT_EQ(CanonicalizePlan(plan)->type(), OpType::kLimit);
}

TEST(CanonicalizePlanTest, IdempotentAndPointerStable) {
  PlanPtr noisy = PlanNode::Select(
      PlanNode::Select(PlanNode::Project(TScan(), {{Col("v"), "val"}}),
                       Expr::Lt(Expr::Literal(3.0), Col("val"))),
      Expr::Gt(Col("val"), Expr::Literal(1.0)));
  PlanPtr canon = CanonicalizePlan(noisy);
  EXPECT_EQ(CanonicalizePlan(canon), canon);
  // An untouched plan passes through by pointer (sharing preserved).
  PlanPtr clean = PlanNode::Select(TScan(),
                                   Expr::Gt(Col("v"), Expr::Literal(1.0)));
  EXPECT_EQ(CanonicalizePlan(clean), clean);
}

// ---------------------------------------------------------------------------
// Result-preserving equivalence + cache sharing (the paper's recycler
// sees one template where the text layer saw many spellings)
// ---------------------------------------------------------------------------

class EquivalenceTest : public ::testing::Test {
 protected:
  static TablePtr MakeT() {
    Schema s({{"a", TypeId::kInt32},
              {"g", TypeId::kInt32},
              {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 20000; ++i) {
      t->AppendRow({int32_t{i % 97}, int32_t{i % 7},
                    static_cast<double>(i % 331)});
    }
    return t;
  }

  static std::unique_ptr<Database> OpenDb(bool canonicalize) {
    DatabaseOptions options;
    options.recycler.mode = RecyclerMode::kSpeculation;
    options.canonicalize_plans = canonicalize;
    std::unique_ptr<Database> db = Database::OpenOrDie(options);
    EXPECT_TRUE(db->CreateTable("t", MakeT()).ok());
    return db;
  }
};

TEST_F(EquivalenceTest, VariantsShareOneCacheEntryAndResults) {
  auto db = OpenDb(/*canonicalize=*/true);
  ExprPtr base_pred = Expr::And(Expr::Ge(Col("v"), Expr::Literal(50.0)),
                                Expr::Lt(Col("v"), Expr::Literal(200.0)));
  std::vector<ExprPtr> variants = {
      base_pred,
      // Reordered + flipped.
      Expr::And(Expr::Lt(Col("v"), Expr::Literal(200.0)),
                Expr::Le(Expr::Literal(50.0), Col("v"))),
      // Folded arithmetic bounds.
      Expr::And(Expr::Ge(Col("v"), Expr::Arith(ArithOp::kMul,
                                               Expr::Literal(25.0),
                                               Expr::Literal(2.0))),
                Expr::Lt(Col("v"), Expr::Literal(200.0))),
      // NOT-eliminated lower bound.
      Expr::And(Expr::Not(Expr::Lt(Col("v"), Expr::Literal(50.0))),
                Expr::Lt(Col("v"), Expr::Literal(200.0))),
      // Redundant conjunct.
      Expr::And(base_pred, Expr::Ge(Col("v"), Expr::Literal(10.0))),
      // Tautological conjunct.
      Expr::And(base_pred, Expr::Literal(true)),
  };
  Result baseline;
  for (size_t i = 0; i < variants.size(); ++i) {
    Query q = Query::FromPlan(PlanNode::Select(TScan(), variants[i]));
    // Identical canonical identity...
    EXPECT_EQ(CanonicalizePlan(q.plan())->TemplateFingerprint(),
              CanonicalizePlan(PlanNode::Select(TScan(), base_pred))
                  ->TemplateFingerprint())
        << "variant " << i;
    // ...and identical rows through the engine, with every variant after
    // the first answered from the first one's cache entry.
    Result r = db->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    if (i == 0) {
      baseline = r;
      continue;
    }
    EXPECT_TRUE(r.recycled()) << "variant " << i;
    ASSERT_EQ(r.num_rows(), baseline.num_rows());
    EXPECT_EQ(RowMultiset(*r.table()), RowMultiset(*baseline.table()));
  }
}

TEST_F(EquivalenceTest, AblationCanonicalizationOffMissesNoisyVariants) {
  // The same pair of semantically equal queries, on both arms. The
  // variant hides its constant behind arithmetic, which defeats exact
  // fingerprint matching AND range-spec extraction when the
  // canonicalizer is off.
  ExprPtr plain = Expr::Ge(Col("v"), Expr::Literal(100.0));
  auto variant = [] {
    return Expr::Ge(Col("v"), Expr::Arith(ArithOp::kAdd, Expr::Literal(60.0),
                                          Expr::Literal(40.0)));
  };
  for (bool canonicalize : {true, false}) {
    auto db = OpenDb(canonicalize);
    Result first = db->Execute(Query::FromPlan(PlanNode::Select(TScan(),
                                                                plain)));
    ASSERT_TRUE(first.ok());
    Result second =
        db->Execute(Query::FromPlan(PlanNode::Select(TScan(), variant())));
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.recycled(), canonicalize);
    // Correctness does not depend on the flag.
    EXPECT_EQ(RowMultiset(*second.table()), RowMultiset(*first.table()));
  }
}

TEST_F(EquivalenceTest, SessionExplainShowsPreAndPostCanonicalization) {
  auto db = OpenDb(/*canonicalize=*/true);
  auto session = db->Connect({});
  Query noisy = Query::FromPlan(PlanNode::Select(
      TScan(), Expr::Lt(Expr::Literal(100.0), Col("v"))));
  std::string explain = session->Explain(noisy);
  EXPECT_NE(explain.find("plan "), std::string::npos) << explain;
  EXPECT_NE(explain.find("canonical "), std::string::npos) << explain;
  EXPECT_EQ(explain.find("(already canonical)"), std::string::npos);

  Query clean = Query::FromPlan(PlanNode::Select(
      TScan(), Expr::Gt(Col("v"), Expr::Literal(100.0))));
  EXPECT_NE(session->Explain(clean).find("(already canonical)"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// CachedScan cache keys: Explain prints the canonical subtree key (the
// cold-tier identity) for every reuse flavor, and the key is
// restart-stable (two engines over the same data print the same key)
// ---------------------------------------------------------------------------

class CacheKeyTest : public EquivalenceTest {
 protected:
  static PlanPtr RangeQuery(double lo, double hi) {
    return PlanNode::Select(
        TScan(),
        Expr::And(Expr::Gt(Col("v"), Expr::Literal(lo)),
                  Expr::Lt(Col("v"), Expr::Literal(hi))));
  }

  /// All `key=` values in an Explain rendering, in print order.
  static std::vector<std::string> ExtractKeys(const std::string& explain) {
    std::vector<std::string> keys;
    size_t pos = 0;
    while ((pos = explain.find(" key=", pos)) != std::string::npos) {
      pos += 5;
      size_t end = explain.find('\n', pos);
      keys.push_back(explain.substr(
          pos, end == std::string::npos ? std::string::npos : end - pos));
    }
    return keys;
  }

  /// Warms the cache with `warm`, then returns the Explain of the
  /// recycler's rewritten plan for `probe` (white-box: the facade only
  /// surfaces the rewritten plan through Recycler::Prepare). Plans are
  /// canonicalized first, as Session would before handing them down.
  static std::string RewrittenExplain(Database& db, const PlanPtr& warm,
                                      const PlanPtr& probe) {
    EXPECT_TRUE(db.Execute(CanonicalizePlan(warm)).ok());
    auto prepared = db.recycler().Prepare(CanonicalizePlan(probe));
    return prepared->plan()->Explain();
  }
};

TEST_F(CacheKeyTest, ExactReuseExplainPrintsTheSubtreeKey) {
  auto db = OpenDb(/*canonicalize=*/true);
  std::string explain =
      RewrittenExplain(*db, RangeQuery(10, 50), RangeQuery(10, 50));
  EXPECT_NE(explain.find("CachedScan"), std::string::npos) << explain;
  std::vector<std::string> keys = ExtractKeys(explain);
  ASSERT_EQ(keys.size(), 1u) << explain;
  EXPECT_FALSE(keys[0].empty());

  // Restart-stable: a second engine over identical data prints the same
  // key (the property that makes the key a valid cold-tier identity).
  auto db2 = OpenDb(/*canonicalize=*/true);
  std::vector<std::string> keys2 = ExtractKeys(
      RewrittenExplain(*db2, RangeQuery(10, 50), RangeQuery(10, 50)));
  ASSERT_EQ(keys2.size(), 1u);
  EXPECT_EQ(keys2[0], keys[0]);
}

TEST_F(CacheKeyTest, SubsumptionDerivedScanPrintsTheSubsumerKey) {
  auto db = OpenDb(/*canonicalize=*/true);
  // The probe's range sits strictly inside the cached one: the rewrite
  // derives a CachedScan from the superset entry plus a residual filter.
  std::string explain =
      RewrittenExplain(*db, RangeQuery(10, 80), RangeQuery(20, 30));
  EXPECT_NE(explain.find("CachedScan"), std::string::npos) << explain;
  std::vector<std::string> keys = ExtractKeys(explain);
  ASSERT_GE(keys.size(), 1u) << explain;
  for (const std::string& k : keys) EXPECT_FALSE(k.empty());
}

TEST_F(CacheKeyTest, StitchedPlanPrintsAKeyPerReusedSlice) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.enable_subsumption = true;
  options.recycler.enable_partial_reuse = true;
  auto db = Database::OpenOrDie(options);
  ASSERT_TRUE(db->CreateTable("t", MakeT()).ok());
  // Overlapping (not containing) ranges force the stitched path: the
  // cached [10,50] slice is clipped and unioned with a delta scan.
  std::string explain =
      RewrittenExplain(*db, RangeQuery(10, 50), RangeQuery(30, 80));
  EXPECT_NE(explain.find("CachedScan"), std::string::npos) << explain;
  std::vector<std::string> keys = ExtractKeys(explain);
  ASSERT_GE(keys.size(), 1u) << explain;
  for (const std::string& k : keys) EXPECT_FALSE(k.empty());
}

}  // namespace
}  // namespace recycledb
