// Tests for the public embeddable API: Database/Session facade, fluent
// Query builder, parameterized PreparedStatements (rebinding reuse,
// template stats, session isolation) and recoverable validation errors.
#include <gtest/gtest.h>

#include <future>
#include <thread>
#include <vector>

#include "recycledb/recycledb.h"

namespace recycledb {
namespace {

TablePtr MakeSalesTable(int rows = 20000) {
  Schema schema({{"city", TypeId::kString},
                 {"year", TypeId::kInt32},
                 {"sales", TypeId::kDouble}});
  TablePtr t = MakeTable(schema);
  const char* cities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
  Rng rng(7);
  for (int i = 0; i < rows; ++i) {
    t->AppendRow({std::string(cities[rng.Uniform(0, 2)]),
                  static_cast<int32_t>(rng.Uniform(2005, 2012)),
                  static_cast<double>(rng.Uniform(10, 5000))});
  }
  return t;
}

std::unique_ptr<Database> OpenSalesDb(
    RecyclerMode mode = RecyclerMode::kSpeculation) {
  DatabaseOptions options;
  options.recycler.mode = mode;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  EXPECT_TRUE(db->CreateTable("sales", MakeSalesTable()).ok());
  return db;
}

Query SalesSince(Database& db, ExprPtr cutoff) {
  return db.Scan("sales", {"city", "year", "sales"})
      .Filter(Expr::Ge(Expr::Column("year"), std::move(cutoff)))
      .Aggregate({"city"}, {{AggFunc::kSum, Expr::Column("sales"), "total"}})
      .OrderBy({{"total", false}});
}

// ---------------------------------------------------------------------------
// Configuration validation (Database::Open)
// ---------------------------------------------------------------------------

TEST(ConfigValidation, RejectsNegativeSpeculationH) {
  RecyclerConfig cfg;
  cfg.speculation_h = -0.5;
  Status st = ValidateRecyclerConfig(cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("speculation_h"), std::string::npos);
}

TEST(ConfigValidation, RejectsNonPositiveStallTimeout) {
  RecyclerConfig cfg;
  cfg.stall_timeout_ms = 0;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
  cfg.stall_timeout_ms = -5;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
}

TEST(ConfigValidation, RejectsNonsensicalCacheBytes) {
  RecyclerConfig cfg;
  cfg.cache_bytes = 17;  // bytes-vs-megabytes mistake: holds nothing
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
  cfg.cache_bytes = 0;  // explicitly disabled: valid
  EXPECT_TRUE(ValidateRecyclerConfig(cfg).ok());
  cfg.cache_bytes = -1;  // unlimited: valid
  EXPECT_TRUE(ValidateRecyclerConfig(cfg).ok());
}

TEST(ConfigValidation, RejectsBadAgingAlphaAndLimits) {
  RecyclerConfig cfg;
  cfg.aging_alpha = 0.0;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
  cfg.aging_alpha = 1.5;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
  cfg = RecyclerConfig();
  cfg.proactive_topn_limit = 0;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
  cfg = RecyclerConfig();
  cfg.speculation_buffer_cap = -1;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());
}

TEST(ConfigValidation, RejectsBadColdTierOptions) {
  RecyclerConfig cfg;
  cfg.spill_min_benefit = -0.1;  // benefits are never negative
  Status st = ValidateRecyclerConfig(cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("spill_min_benefit"), std::string::npos);

  cfg = RecyclerConfig();
  cfg.spill_dir = "/tmp/rdb-spill-validate";
  cfg.cold_tier_capacity_bytes = 0;
  st = ValidateRecyclerConfig(cfg);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("cold_tier_capacity_bytes"), std::string::npos);
  cfg.cold_tier_capacity_bytes = -4096;
  EXPECT_FALSE(ValidateRecyclerConfig(cfg).ok());

  // Capacity only matters once a spill_dir enables the tier.
  cfg = RecyclerConfig();
  cfg.cold_tier_capacity_bytes = 0;
  EXPECT_TRUE(ValidateRecyclerConfig(cfg).ok());
}

TEST(ConfigValidation, OpenRejectsUnwritableSpillDir) {
  DatabaseOptions options;
  // /proc is not writable even for root; directory creation must fail
  // with an actionable message rather than degrading silently.
  options.recycler.spill_dir = "/proc/rdb-no-such-spill-dir";
  std::unique_ptr<Database> db;
  Status st = Database::Open(options, &db);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("spill_dir"), std::string::npos);
  EXPECT_EQ(db, nullptr);
}

TEST(ConfigValidation, OpenReturnsStatusAndLeavesOutUntouched) {
  DatabaseOptions options;
  options.recycler.speculation_h = -1;
  std::unique_ptr<Database> db;
  Status st = Database::Open(options, &db);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(db, nullptr);

  options = DatabaseOptions();
  options.max_concurrent = 0;
  EXPECT_FALSE(Database::Open(options, &db).ok());

  options = DatabaseOptions();
  EXPECT_TRUE(Database::Open(options, &db).ok());
  ASSERT_NE(db, nullptr);
}

// ---------------------------------------------------------------------------
// Fluent builder & Explain
// ---------------------------------------------------------------------------

TEST(QueryBuilder, BuildsExpectedPlanShape) {
  auto db = OpenSalesDb();
  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  ASSERT_NE(q.plan(), nullptr);
  EXPECT_EQ(q.plan()->type(), OpType::kOrderBy);
  EXPECT_EQ(q.plan()->child()->type(), OpType::kAggregate);
  EXPECT_EQ(q.plan()->child()->child()->type(), OpType::kSelect);
  EXPECT_EQ(q.plan()->child()->child()->child()->type(), OpType::kScan);
  EXPECT_FALSE(q.HasParams());
}

TEST(QueryBuilder, ExplainShowsOperatorsAndParams) {
  auto db = OpenSalesDb();
  Query q = SalesSince(*db, Expr::Param("since"));
  std::string explain = q.Explain();
  EXPECT_NE(explain.find("OrderBy total desc"), std::string::npos);
  EXPECT_NE(explain.find("Aggregate group=[city]"), std::string::npos);
  EXPECT_NE(explain.find("$since"), std::string::npos);
  EXPECT_NE(explain.find("Scan sales [city, year, sales]"),
            std::string::npos);
  EXPECT_TRUE(q.HasParams());
  EXPECT_EQ(q.Params(), std::set<std::string>{"since"});
}

TEST(QueryBuilder, TemplateFingerprintIsBindingIndependent) {
  auto db = OpenSalesDb();
  Query a = SalesSince(*db, Expr::Param("since"));
  Query b = SalesSince(*db, Expr::Param("since"));
  Query c = SalesSince(*db, Expr::Literal(int64_t{2008}));
  EXPECT_EQ(a.TemplateFingerprint(), b.TemplateFingerprint());
  EXPECT_NE(a.TemplateFingerprint(), c.TemplateFingerprint());
}

// ---------------------------------------------------------------------------
// Execution through the facade
// ---------------------------------------------------------------------------

TEST(Facade, ExecuteAdHocQueryAndBatchIteration) {
  auto db = OpenSalesDb();
  Result r = db->Execute(SalesSince(*db, Expr::Literal(int64_t{2008})));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.num_rows(), 3);
  EXPECT_EQ(r.schema().Names(),
            (std::vector<std::string>{"city", "total"}));

  // Batch iteration covers all rows via zero-copy views.
  int64_t rows = 0;
  for (Batch batch : r.Batches()) {
    rows += batch.num_rows;
    ASSERT_EQ(batch.columns.size(), 2u);
  }
  EXPECT_EQ(rows, r.num_rows());
}

TEST(Facade, RepeatedQueryIsRecycledWithResultStats) {
  auto db = OpenSalesDb();
  Result first = db->Execute(SalesSince(*db, Expr::Literal(int64_t{2008})));
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.recycled());
  Result second = db->Execute(SalesSince(*db, Expr::Literal(int64_t{2008})));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.recycled());
  EXPECT_GT(second.reuses(), 0);
}

TEST(Facade, ReplaceTableInvalidatesCachedResults) {
  auto db = OpenSalesDb();
  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  ASSERT_TRUE(db->Execute(q).ok());
  ASSERT_TRUE(db->Execute(q).recycled());
  // Replacing the table must evict dependents: next run recomputes.
  ASSERT_TRUE(db->ReplaceTable("sales", MakeSalesTable(1000)).ok());
  Result after = db->Execute(SalesSince(*db, Expr::Literal(int64_t{2008})));
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.recycled());
}

// ---------------------------------------------------------------------------
// Prepared statements: rebinding reuse & template stats
// ---------------------------------------------------------------------------

TEST(PreparedStatements, RebindingSameConstantsHitsTheCache) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  Status st;
  auto stmt = session->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr) << st.ToString();
  EXPECT_EQ(stmt->parameters(), std::set<std::string>{"since"});

  Result a1 = stmt->Execute({{"since", int64_t{2008}}});
  ASSERT_TRUE(a1.ok()) << a1.status().ToString();
  EXPECT_FALSE(a1.recycled());
  EXPECT_EQ(a1.template_prior_runs(), 0);

  Result b1 = stmt->Execute({{"since", int64_t{2010}}});
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1.template_prior_runs(), 1);

  // Fresh bindings repeating earlier constants: answered from the cache,
  // visible in the Result stats (the acceptance criterion).
  Result a2 = stmt->Execute({{"since", int64_t{2008}}});
  ASSERT_TRUE(a2.ok());
  EXPECT_TRUE(a2.recycled());
  Result b2 = stmt->Execute({{"since", int64_t{2010}}});
  ASSERT_TRUE(b2.ok());
  EXPECT_TRUE(b2.recycled());

  TemplateStats ts = stmt->stats();
  EXPECT_EQ(ts.executions, 4);
  EXPECT_GE(ts.reuses, 2);
  EXPECT_GE(ts.materializations, 1);
  EXPECT_EQ(db->StatsForTemplate(stmt->template_hash()).executions, 4);

  // Results agree with an ad-hoc run of the same constants.
  Result adhoc = db->Execute(SalesSince(*db, Expr::Literal(int64_t{2008})));
  ASSERT_TRUE(adhoc.ok());
  EXPECT_EQ(adhoc.table()->ToString(100), a2.table()->ToString(100));
}

TEST(PreparedStatements, RebindingGetsSubsumptionHits) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  // Seed the cache with the broad selection.
  ASSERT_TRUE(
      session
          ->Execute(db->Scan("sales", {"city", "year", "sales"})
                        .Filter(Expr::Gt(Expr::Column("sales"),
                                         Expr::Literal(4900.0))))
          .ok());
  // Template refines the broad conjunct with a parameterized equality:
  // every binding is answerable from the cached superset (tuple
  // subsumption), never from an exact match.
  Status st;
  auto stmt = session->Prepare(
      db->Scan("sales", {"city", "year", "sales"})
          .Filter(Expr::And(
              Expr::Gt(Expr::Column("sales"), Expr::Literal(4900.0)),
              Expr::Eq(Expr::Column("year"), Expr::Param("y")))),
      &st);
  ASSERT_NE(stmt, nullptr) << st.ToString();
  int subsumed = 0;
  for (int64_t y : {2006, 2008, 2010}) {
    Result r = stmt->Execute({{"y", y}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    subsumed += r.subsumption_reuses() > 0 ? 1 : 0;
  }
  EXPECT_GT(subsumed, 0);
  EXPECT_GT(stmt->stats().subsumption_reuses, 0);
}

TEST(PreparedStatements, FunctionScanTemplateRebinds) {
  DatabaseOptions options;
  auto db = Database::OpenOrDie(options);
  skyserver::Setup(20000, &db->catalog());
  auto session = db->Connect({});
  Status st;
  auto cone = session->Prepare(skyserver::ConeSearchTemplate(), &st);
  ASSERT_NE(cone, nullptr) << st.ToString();

  ParamMap dominant = {{"ra", 195.0}, {"dec", 2.5}, {"radius", 0.5}};
  Result cold = cone->Execute(dominant);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold.recycled());
  Result warm = cone->Execute(dominant);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.recycled());
  EXPECT_EQ(warm.num_rows(), cold.num_rows());

  // A different cone is a different instance of the same template.
  Result other = cone->Execute({{"ra", 10.0}, {"dec", 0.0}, {"radius", 0.5}});
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(cone->stats().executions, 3);
}

TEST(PreparedStatements, StatementStreamsThroughTheDriver) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  Status st;
  auto stmt = session->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr) << st.ToString();

  // Two streams drawing from the same small binding domain: cross-stream
  // parameter collisions become cache hits (the paper's §V setting).
  std::vector<ParamMap> bindings;
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    bindings.push_back({{"since", int64_t{2006 + (int)rng.Uniform(0, 2)}}});
  }
  std::vector<workload::StreamSpec> streams;
  streams.push_back(workload::MakeStatementStream(stmt.get(), bindings, "S"));
  streams.push_back(workload::MakeStatementStream(stmt.get(), bindings, "S"));
  workload::RunReport report = workload::RunStreams(db.get(), streams, 4);
  EXPECT_EQ(report.TotalQueries(), 20);
  EXPECT_GT(report.TotalReuses(), 0);
  // Every driver execution carries the template identity.
  EXPECT_EQ(db->StatsForTemplate(stmt->template_hash()).executions, 20);
}

// ---------------------------------------------------------------------------
// Session isolation & overrides
// ---------------------------------------------------------------------------

TEST(Sessions, TracesAndStatsAreIsolatedPerSession) {
  auto db = OpenSalesDb();
  auto alice = db->Connect([] {
    SessionOptions o;
    o.name = "alice";
    return o;
  }());
  auto bob = db->Connect([] {
    SessionOptions o;
    o.name = "bob";
    return o;
  }());

  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  ASSERT_TRUE(alice->Execute(q).ok());
  ASSERT_TRUE(alice->Execute(q).ok());
  ASSERT_TRUE(bob->Execute(q).ok());

  EXPECT_EQ(alice->stats().queries, 2);
  EXPECT_EQ(bob->stats().queries, 1);
  EXPECT_EQ(alice->traces().size(), 2u);
  EXPECT_EQ(bob->traces().size(), 1u);
  // Bob's single run reused what Alice materialized (shared engine),
  // and his session saw the reuse while Alice's stats are untouched.
  EXPECT_GT(bob->stats().reuses, 0);
  EXPECT_EQ(bob->stats().materializations, 0);
  EXPECT_GT(alice->stats().materializations, 0);
  // The engine-wide counters aggregate across sessions.
  EXPECT_EQ(db->counters().queries.load(), 3);
}

TEST(Sessions, TraceCollectionCanBeDisabled) {
  auto db = OpenSalesDb();
  SessionOptions o;
  o.collect_traces = false;
  auto session = db->Connect(o);
  ASSERT_TRUE(
      session->Execute(SalesSince(*db, Expr::Literal(int64_t{2008}))).ok());
  EXPECT_EQ(session->traces().size(), 0u);
  EXPECT_EQ(session->stats().queries, 1);
}

TEST(Sessions, BypassRecyclerOverride) {
  auto db = OpenSalesDb();
  SessionOptions o;
  o.bypass_recycler = true;
  auto raw = db->Connect(o);
  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  Result r1 = raw->Execute(q);
  Result r2 = raw->Execute(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  // No recycling for this session: nothing reused, engine untouched.
  EXPECT_FALSE(r2.recycled());
  EXPECT_EQ(db->counters().queries.load(), 0);
  EXPECT_EQ(r1.table()->ToString(10), r2.table()->ToString(10));
}

// ---------------------------------------------------------------------------
// Async submission
// ---------------------------------------------------------------------------

TEST(AsyncSubmit, FuturesResolveAndShareTheCache) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  std::vector<std::future<Result>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(
        session->Submit(SalesSince(*db, Expr::Literal(int64_t{2008}))));
  }
  int reused = 0;
  for (auto& f : futures) {
    Result r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.num_rows(), 3);
    reused += r.recycled() ? 1 : 0;
  }
  EXPECT_GT(reused, 0);
  EXPECT_EQ(session->stats().queries, 8);
}

TEST(AsyncSubmit, StatementSubmitRoutesThroughGate) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  Status st;
  auto stmt = session->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr);
  auto f1 = stmt->Bind("since", int64_t{2008}).Submit();
  auto f2 = stmt->Bind("since", int64_t{2008}).Submit();
  Result r1 = f1.get();
  Result r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(stmt->stats().executions, 2);
}

// ---------------------------------------------------------------------------
// Errors: unbound parameters, type mismatches, invalid queries
// ---------------------------------------------------------------------------

TEST(Errors, ExecutingParameterizedQueryWithoutPrepareFails) {
  auto db = OpenSalesDb();
  Result r = db->Execute(SalesSince(*db, Expr::Param("since")));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("$since"), std::string::npos);
}

TEST(Errors, UnboundParameterFailsWithExplain) {
  auto db = OpenSalesDb();
  Status st;
  auto stmt = db->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr);
  Result r = stmt->Execute();  // nothing bound
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("unbound parameters: $since"),
            std::string::npos);
  // The message embeds the statement Explain (tree + bindings).
  EXPECT_NE(r.status().message().find("Scan sales"), std::string::npos);
  EXPECT_NE(r.status().message().find("$since=<unbound>"),
            std::string::npos);
}

TEST(Errors, TypeMismatchedBindingFails) {
  auto db = OpenSalesDb();
  Status st;
  auto stmt = db->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr);
  Result r = stmt->Execute({{"since", std::string("not-a-year")}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("cannot compare"), std::string::npos);
  // Rebinding correctly afterwards works (the statement is not poisoned).
  Result ok = stmt->Execute({{"since", int64_t{2008}}});
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(Errors, UnknownParameterNameIsReported) {
  auto db = OpenSalesDb();
  Status st;
  auto stmt = db->Prepare(SalesSince(*db, Expr::Param("since")), &st);
  ASSERT_NE(stmt, nullptr);
  Result r = stmt->Bind("sinc", int64_t{2008}).Execute();
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown parameter: $sinc"),
            std::string::npos);
  stmt->ClearBindings();
  EXPECT_TRUE(stmt->Execute({{"since", int64_t{2008}}}).ok());
}

TEST(Errors, StructuralTemplateErrorsSurfaceAtPrepare) {
  auto db = OpenSalesDb();
  Status st;
  auto stmt = db->Prepare(
      db->Scan("no_such_table", {"x"}).Filter(Expr::Param("p")), &st);
  EXPECT_EQ(stmt, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("no_such_table"), std::string::npos);
}

TEST(Errors, UnknownColumnFailsWithoutAborting) {
  auto db = OpenSalesDb();
  Result r = db->Execute(
      db->Scan("sales", {"city"})
          .Filter(Expr::Gt(Expr::Column("nope"), Expr::Literal(1.0))));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown column: nope"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("Filter"), std::string::npos);
}

TEST(Errors, ScanOfUnknownColumnFails) {
  auto db = OpenSalesDb();
  Result r = db->Execute(db->Scan("sales", {"city", "bogus"}));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("sales.bogus"), std::string::npos);
}

TEST(Errors, FunctionScanArgTypeMismatchFails) {
  DatabaseOptions options;
  auto db = Database::OpenOrDie(options);
  skyserver::Setup(5000, &db->catalog());
  auto session = db->Connect({});
  Status st;
  auto cone = session->Prepare(skyserver::ConeSearchTemplate(), &st);
  ASSERT_NE(cone, nullptr) << st.ToString();
  // Binding a string where fGetNearbyObjEq declares a double must come
  // back as Status, not abort inside the table function.
  Result r = cone->Execute(
      {{"ra", std::string("195")}, {"dec", 2.5}, {"radius", 0.5}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("expected DOUBLE"), std::string::npos);
  // Integer-for-double is an acceptable numeric coercion.
  Result ok = cone->Execute(
      {{"ra", int64_t{195}}, {"dec", 2.5}, {"radius", 0.5}});
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST(Errors, ErrorResultAccessorsAreSafe) {
  auto db = OpenSalesDb();
  Result r = db->Execute(db->Scan("sales", {"bogus"}));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.table(), nullptr);
  EXPECT_EQ(r.num_rows(), 0);
  EXPECT_EQ(r.schema().num_fields(), 0);
  int batches = 0;
  for (Batch b : r.Batches()) batches += b.num_rows > 0;
  EXPECT_EQ(batches, 0);
  EXPECT_EQ(r.ToString(), r.status().ToString());
}

TEST(AsyncSubmit, SameQuerySubmittedConcurrentlyIsSafe) {
  auto db = OpenSalesDb();
  auto session = db->Connect({});
  // One Query object, many concurrent submissions: the facade must not
  // race on binding the shared plan nodes (each submission deep-clones).
  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  std::vector<std::future<Result>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(session->Submit(q));
  for (auto& f : futures) {
    Result r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.num_rows(), 3);
  }
}

TEST(AsyncSubmit, SessionDestructionDrainsInFlightWork) {
  auto db = OpenSalesDb();
  std::future<Result> f;
  {
    auto session = db->Connect({});
    f = session->Submit(SalesSince(*db, Expr::Literal(int64_t{2008})));
    // Session destroyed here with the submission possibly still running;
    // the destructor must wait it out (no use-after-free).
  }
  Result r = f.get();
  EXPECT_TRUE(r.ok());
}

TEST(Sessions, TraceRingKeepsTheMostRecent) {
  auto db = OpenSalesDb();
  SessionOptions o;
  o.max_traces = 3;
  auto session = db->Connect(o);
  Query q = SalesSince(*db, Expr::Literal(int64_t{2008}));
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(session->Execute(q).ok());
  std::vector<QueryTrace> traces = session->traces();
  ASSERT_EQ(traces.size(), 3u);
  // Oldest-first, and strictly the latest three query ids.
  EXPECT_LT(traces[0].query_id, traces[1].query_id);
  EXPECT_LT(traces[1].query_id, traces[2].query_id);
  EXPECT_EQ(session->stats().queries, 5);
}

TEST(Errors, ComparingStringColumnToNumberFails) {
  auto db = OpenSalesDb();
  Result r = db->Execute(
      db->Scan("sales", {"city", "sales"})
          .Filter(Expr::Eq(Expr::Column("city"), Expr::Literal(int64_t{1}))));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Errors, JoinKeyTypeMismatchFails) {
  auto db = OpenSalesDb();
  Schema s({{"y64", TypeId::kInt64}, {"w", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  t->AppendRow({int64_t{2008}, 1.0});
  ASSERT_TRUE(db->CreateTable("aux", t).ok());
  // year is INT32, y64 is INT64: the join comparator requires identical
  // key types, so this must fail validation instead of aborting later.
  Result r = db->Execute(
      db->Scan("sales", {"city", "year"})
          .Join(db->Scan("aux", {"y64", "w"}), JoinKind::kInner, {"year"},
                {"y64"}));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("join key type mismatch"),
            std::string::npos);
}

TEST(Sessions, ConcurrentPrepareOfOneSharedQueryIsSafe) {
  auto db = OpenSalesDb();
  // One Query template shared by two client threads, each with its own
  // session: Prepare must not mutate the shared plan (it deep-clones).
  Query q = SalesSince(*db, Expr::Param("since"));
  auto worker = [&db, &q](int64_t since) {
    auto session = db->Connect({});
    Status st;
    auto stmt = session->Prepare(q, &st);
    ASSERT_NE(stmt, nullptr) << st.ToString();
    Result r = stmt->Execute({{"since", since}});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.num_rows(), 3);
  };
  std::thread t1(worker, int64_t{2008});
  std::thread t2(worker, int64_t{2010});
  t1.join();
  t2.join();
}

}  // namespace
}  // namespace recycledb
