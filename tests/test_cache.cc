// Tests for the recycler cache: Danzig-style group-local replacement,
// admission checks, flush/remove, and the ablation policies (§III-E).
#include <gtest/gtest.h>

#include <map>

#include "recycler/cache.h"

namespace recycledb {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  /// Creates a node with a cached table of roughly `bytes` bytes.
  RGNode* MakeNode(int64_t bytes, double benefit) {
    auto node = std::make_unique<RGNode>();
    node->id = next_id_++;
    TablePtr t = MakeTable(Schema({{"x", TypeId::kInt64}}));
    for (int64_t i = 0; i < bytes / 8; ++i) t->AppendRow({i});
    node->cached = t;
    node->cached_bytes = bytes;
    benefits_[node.get()] = benefit;
    nodes_.push_back(std::move(node));
    return nodes_.back().get();
  }

  std::function<double(const RGNode*)> BenefitFn() {
    return [this](const RGNode* n) { return benefits_.at(n); };
  }

  std::map<const RGNode*, double> benefits_;
  std::vector<std::unique_ptr<RGNode>> nodes_;
  int64_t next_id_ = 1;
};

TEST_F(CacheTest, AdmitWhileSpaceAvailable) {
  RecyclerCache cache(10000, BenefitFn());
  std::vector<RGNode*> evicted;
  EXPECT_TRUE(cache.Admit(MakeNode(4000, 1.0), 1.0, &evicted));
  EXPECT_TRUE(cache.Admit(MakeNode(4000, 0.1), 0.1, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(cache.used_bytes(), 8000);
  EXPECT_EQ(cache.num_entries(), 2);
}

TEST_F(CacheTest, RejectsResultLargerThanCapacity) {
  RecyclerCache cache(1000, BenefitFn());
  std::vector<RGNode*> evicted;
  EXPECT_FALSE(cache.Admit(MakeNode(5000, 100.0), 100.0, &evicted));
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST_F(CacheTest, ReplacementEvictsLowerBenefitInSameGroup) {
  RecyclerCache cache(10000, BenefitFn());
  std::vector<RGNode*> evicted;
  RGNode* weak = MakeNode(6000, 0.1);
  ASSERT_TRUE(cache.Admit(weak, 0.1, &evicted));
  // Same log2-size group (4096..8191), higher benefit: replaces.
  RGNode* strong = MakeNode(6000, 5.0);
  ASSERT_TRUE(cache.Admit(strong, 5.0, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], weak);
  EXPECT_EQ(cache.num_entries(), 1);
}

TEST_F(CacheTest, ReplacementRefusesWhenIncumbentsAreBetter) {
  RecyclerCache cache(10000, BenefitFn());
  std::vector<RGNode*> evicted;
  ASSERT_TRUE(cache.Admit(MakeNode(6000, 5.0), 5.0, &evicted));
  EXPECT_FALSE(cache.Admit(MakeNode(6000, 0.5), 0.5, &evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(cache.num_entries(), 1);
}

TEST_F(CacheTest, PaperPolicyIsGroupLocal) {
  // The paper's replacement policy only scans the candidate's own
  // log2-size group: low-benefit entries in OTHER groups do not help.
  RecyclerCache cache(10000, BenefitFn());
  std::vector<RGNode*> evicted;
  ASSERT_TRUE(cache.Admit(MakeNode(900, 0.01), 0.01, &evicted));   // group 9
  ASSERT_TRUE(cache.Admit(MakeNode(8200, 0.02), 0.02, &evicted));  // group 13
  // Candidate of ~2000 bytes (group 10): its own group is empty, so the
  // 900-byte low-benefit entry in group 9 cannot be considered -> refuse.
  EXPECT_FALSE(cache.WouldAdmit(99.0, 2000));
  // A same-group candidate, however, can displace the group-9 entry
  // (frees 900 + 900 free bytes >= 990).
  EXPECT_TRUE(cache.WouldAdmit(99.0, 990));
}

TEST_F(CacheTest, AverageBenefitStopRule) {
  // Victims are accumulated only while their average benefit stays below
  // the candidate's. Full cache: both group-12 entries must be evicted to
  // fit the 6000-byte candidate.
  RecyclerCache cache(10000, BenefitFn());
  std::vector<RGNode*> evicted;
  ASSERT_TRUE(cache.Admit(MakeNode(5000, 1.0), 1.0, &evicted));
  ASSERT_TRUE(cache.Admit(MakeNode(5000, 10.0), 10.0, &evicted));
  // avg(1, 10) = 5.5 >= 5.0 -> the scan stops before enough is freed.
  EXPECT_FALSE(cache.WouldAdmit(5.0, 6000));
  // A candidate above the victims' average is admitted.
  EXPECT_TRUE(cache.WouldAdmit(6.0, 6000));
}

TEST_F(CacheTest, UnlimitedCacheAdmitsEverything) {
  RecyclerCache cache(-1, BenefitFn());
  std::vector<RGNode*> evicted;
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(cache.Admit(MakeNode(1 << 16, 0.001), 0.001, &evicted));
  }
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(cache.num_entries(), 32);
}

TEST_F(CacheTest, RemoveAndFlush) {
  RecyclerCache cache(100000, BenefitFn());
  std::vector<RGNode*> evicted;
  RGNode* a = MakeNode(1000, 1.0);
  RGNode* b = MakeNode(1000, 2.0);
  ASSERT_TRUE(cache.Admit(a, 1.0, &evicted));
  ASSERT_TRUE(cache.Admit(b, 2.0, &evicted));
  cache.Remove(a);
  EXPECT_EQ(cache.num_entries(), 1);
  EXPECT_EQ(cache.used_bytes(), 1000);
  cache.Remove(a);  // double remove is a no-op
  EXPECT_EQ(cache.num_entries(), 1);
  std::vector<RGNode*> flushed;
  cache.Flush(&flushed);
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0], b);
  EXPECT_EQ(cache.used_bytes(), 0);
}

TEST_F(CacheTest, LruPolicyEvictsOldest) {
  RecyclerCache cache(10000, BenefitFn(), CachePolicy::kLru);
  std::vector<RGNode*> evicted;
  RGNode* oldest = MakeNode(4000, 100.0);  // high benefit but old
  RGNode* newer = MakeNode(4000, 0.1);
  ASSERT_TRUE(cache.Admit(oldest, 100.0, &evicted));
  ASSERT_TRUE(cache.Admit(newer, 0.1, &evicted));
  ASSERT_TRUE(cache.Admit(MakeNode(4000, 0.2), 0.2, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], oldest);  // LRU ignores benefit
}

TEST_F(CacheTest, LruTouchProtectsEntry) {
  RecyclerCache cache(10000, BenefitFn(), CachePolicy::kLru);
  std::vector<RGNode*> evicted;
  RGNode* a = MakeNode(4000, 1.0);
  RGNode* b = MakeNode(4000, 1.0);
  ASSERT_TRUE(cache.Admit(a, 1.0, &evicted));
  ASSERT_TRUE(cache.Admit(b, 1.0, &evicted));
  cache.TouchForLru(a);  // a becomes most recent
  ASSERT_TRUE(cache.Admit(MakeNode(4000, 1.0), 1.0, &evicted));
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], b);
}

TEST_F(CacheTest, AdmitAllPolicyEvictsAcrossGroups) {
  RecyclerCache cache(10000, BenefitFn(), CachePolicy::kAdmitAll);
  std::vector<RGNode*> evicted;
  ASSERT_TRUE(cache.Admit(MakeNode(900, 0.5), 0.5, &evicted));    // small group
  ASSERT_TRUE(cache.Admit(MakeNode(8200, 0.9), 0.9, &evicted));   // big group
  // 2000-byte candidate: admit-all evicts the globally worst entries
  // regardless of group.
  EXPECT_TRUE(cache.WouldAdmit(0.001, 2000));
}

}  // namespace
}  // namespace recycledb
