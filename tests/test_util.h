// Shared helpers for the recycledb test suite.
#pragma once

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "storage/table.h"

namespace recycledb {
namespace testing {

/// Renders a row as a canonical string (doubles at 6 significant digits so
/// summation-order differences do not break equality).
inline std::string RowKey(const Table& t, int64_t row) {
  std::string key;
  for (int c = 0; c < t.num_columns(); ++c) {
    key += DatumToString(t.Get(row, c));
    key += "|";
  }
  return key;
}

/// Multiset of canonical row strings (order-insensitive table equality).
inline std::multiset<std::string> RowMultiset(const Table& t) {
  std::multiset<std::string> rows;
  for (int64_t r = 0; r < t.num_rows(); ++r) rows.insert(RowKey(t, r));
  return rows;
}

/// Multiset restricted to the given column names (used for top-N queries
/// where ties at the cut boundary are resolved arbitrarily).
inline std::multiset<std::string> ColumnMultiset(
    const Table& t, const std::vector<std::string>& cols) {
  std::vector<int> idx;
  for (const auto& c : cols) idx.push_back(t.schema().IndexOfChecked(c));
  std::multiset<std::string> rows;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (int c : idx) {
      key += DatumToString(t.Get(r, c));
      key += "|";
    }
    rows.insert(key);
  }
  return rows;
}

}  // namespace testing
}  // namespace recycledb
