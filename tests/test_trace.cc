// Trace subsystem tests: record/replay round trips, format robustness
// and Explain determinism.
//
// Contracts checked here:
//  - The datum codec and the JSONL trace grammar round-trip exactly.
//  - Malformed trace input — truncated, corrupt, garbage, version-skewed
//    — always yields a recoverable Status, never an abort (mirroring the
//    cold tier's spill-file rejection tests).
//  - A recorded workload replayed on a fresh Database reproduces result
//    digests AND reuse modes bit for bit single-stream, and result
//    digests (with an aggregate hit-rate gate) at 4x concurrency.
//  - Replay detects deliberate divergence: a chooser change surfaces as
//    mode mismatches, changed base data as digest mismatches.
//  - Explain output is byte-deterministic across engine instances,
//    including stitched UnionAll plans.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "skyserver/skyserver.h"
#include "test_util.h"
#include "trace/recorder.h"
#include "trace/replayer.h"
#include "trace/trace_format.h"
#include "workload/rollup.h"

namespace recycledb {
namespace {

using trace::AppendEvent;
using trace::DecodeDatum;
using trace::EncodeDatum;
using trace::ParseTrace;
using trace::ReplayOptions;
using trace::ReplayReport;
using trace::SerializeTrace;
using trace::StatementEvent;
using trace::Trace;
using trace::TraceEvent;
using trace::TraceHeader;
using trace::TraceRecorder;
using trace::TraceReplayer;

/// Deterministic engine configuration for record/replay tests: unlimited
/// cache (no eviction), calibrated cost model (no wall-clock in
/// decisions) and plan-shape capture for the strict diffs.
DatabaseOptions TraceOptions() {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = -1;
  options.recycler.use_cost_model = true;
  options.recycler.capture_plan_explain = true;
  return options;
}

// ---------------------------------------------------------------------------
// Datum codec
// ---------------------------------------------------------------------------

TEST(TraceFormatTest, ReuseModeNamesRoundTrip) {
  for (ReuseMode m :
       {ReuseMode::kNone, ReuseMode::kExact, ReuseMode::kColdReadmit,
        ReuseMode::kSubsumption, ReuseMode::kPartialStitch, ReuseMode::kDelta,
        ReuseMode::kAggMerge}) {
    ReuseMode parsed;
    ASSERT_TRUE(ParseReuseMode(ReuseModeName(m), &parsed))
        << ReuseModeName(m);
    EXPECT_EQ(parsed, m);
  }
  ReuseMode parsed;
  EXPECT_FALSE(ParseReuseMode("warp-drive", &parsed));
  EXPECT_FALSE(ParseReuseMode("", &parsed));
}

TEST(TraceFormatTest, DatumCodecRoundTripsExactly) {
  std::vector<Datum> values = {
      std::monostate{},
      true,
      false,
      int32_t{0},
      int32_t{-2147483647},
      int64_t{1234567890123456789},
      int64_t{-42},
      0.0,
      -0.5,
      0.1,                      // not exactly representable in decimal
      1.0 / 3.0,                //
      1e300,                    //
      std::string(""),
      std::string("plain"),
      std::string("tag:colon"),           // ':' inside the payload
      std::string("line\nbreak\t\"q\\"),  // escaping round trip
  };
  for (const Datum& d : values) {
    Datum back;
    const std::string encoded = EncodeDatum(d);
    ASSERT_TRUE(DecodeDatum(encoded, &back).ok()) << encoded;
    EXPECT_EQ(back.index(), d.index()) << encoded;
    EXPECT_TRUE(back == d) << encoded;  // doubles: %a round trip is exact
  }
}

TEST(TraceFormatTest, DatumCodecRejectsMalformed) {
  Datum d;
  for (const char* bad :
       {"", "nope", "i32:", "i32:abc", "i32:12x", "i32:99999999999",
        "i64:", "i64:1e5", "f:", "f:zz", "b:", "b:2", "q:1"}) {
    EXPECT_FALSE(DecodeDatum(bad, &d).ok()) << bad;
  }
}

// ---------------------------------------------------------------------------
// Serialize / parse round trip
// ---------------------------------------------------------------------------

Trace SampleTrace() {
  Trace t;
  t.header.seed = 991;
  t.header.clock_ms = 1234;
  t.header.workload = "sample \"workload\"";
  t.header.mode = "SPEC";
  t.header.tags = {{"objects", "20000"}, {"note", "line\nbreak"}};

  TraceEvent s1;
  s1.kind = TraceEvent::Kind::kStatement;
  s1.statement.sql = "SELECT a FROM t WHERE a >= :lo AND s = 'x\"y'";
  s1.statement.params = {{"lo", int32_t{7}}};
  s1.statement.plan_fingerprint = 0xdeadbeefcafef00dULL;
  s1.statement.template_hash = 42;
  s1.statement.reuse_mode = ReuseMode::kPartialStitch;
  s1.statement.rows = 11;
  s1.statement.digest = 18446744073709551615ULL;  // u64 max: no precision loss
  s1.statement.plan_explain = "UnionAll\n  Scan t\n  Scan t\n";
  t.events.push_back(s1);

  TraceEvent a1;
  a1.kind = TraceEvent::Kind::kAppend;
  a1.append = {"events", 512, 4096};
  t.events.push_back(a1);

  TraceEvent s2;
  s2.kind = TraceEvent::Kind::kStatement;
  s2.statement.sql = "SELECT 1 control\x01char";
  s2.statement.reuse_mode = ReuseMode::kNone;
  t.events.push_back(s2);
  return t;
}

TEST(TraceFormatTest, SerializeParseRoundTrip) {
  Trace t = SampleTrace();
  Trace back;
  ASSERT_TRUE(ParseTrace(SerializeTrace(t), &back).ok());

  EXPECT_EQ(back.header.version, trace::kTraceFormatVersion);
  EXPECT_EQ(back.header.seed, t.header.seed);
  EXPECT_EQ(back.header.clock_ms, t.header.clock_ms);
  EXPECT_EQ(back.header.workload, t.header.workload);
  EXPECT_EQ(back.header.mode, t.header.mode);
  EXPECT_EQ(back.header.tags, t.header.tags);

  ASSERT_EQ(back.events.size(), t.events.size());
  EXPECT_EQ(back.NumStatements(), 2);
  EXPECT_EQ(back.NumAppends(), 1);

  const StatementEvent& s1 = back.events[0].statement;
  EXPECT_EQ(s1.sql, t.events[0].statement.sql);
  EXPECT_TRUE(s1.params == t.events[0].statement.params);
  EXPECT_EQ(s1.plan_fingerprint, t.events[0].statement.plan_fingerprint);
  EXPECT_EQ(s1.template_hash, t.events[0].statement.template_hash);
  EXPECT_EQ(s1.reuse_mode, ReuseMode::kPartialStitch);
  EXPECT_EQ(s1.rows, 11);
  EXPECT_EQ(s1.digest, t.events[0].statement.digest);
  EXPECT_EQ(s1.plan_explain, t.events[0].statement.plan_explain);

  const AppendEvent& a1 = back.events[1].append;
  EXPECT_EQ(a1.table, "events");
  EXPECT_EQ(a1.rows, 512);
  EXPECT_EQ(a1.start_row, 4096);

  EXPECT_EQ(back.events[2].statement.sql, t.events[2].statement.sql);

  // Serialization is deterministic: a round-tripped trace re-serializes
  // byte-identically (golden traces rely on this).
  EXPECT_EQ(SerializeTrace(back), SerializeTrace(t));
}

// ---------------------------------------------------------------------------
// Robustness: corrupt input must fail soft (satellite: mirror the cold
// tier's spill-file rejection)
// ---------------------------------------------------------------------------

TEST(TraceFormatTest, RejectsGarbageInput) {
  Trace out;
  EXPECT_FALSE(ParseTrace("", &out).ok()) << "empty: no header";
  EXPECT_FALSE(ParseTrace("hello world\n", &out).ok());
  EXPECT_FALSE(ParseTrace("{\"kind\":\"header\"", &out).ok())
      << "unterminated object";
  EXPECT_FALSE(ParseTrace("{\"kind\":42}\n", &out).ok())
      << "non-string value";
  EXPECT_FALSE(ParseTrace(std::string("\x00\x01\xff\xfe{]", 6), &out).ok())
      << "binary garbage";
  // Valid JSON, wrong grammar: nested object inside an object.
  EXPECT_FALSE(
      ParseTrace("{\"kind\":\"header\",\"tags\":{\"a\":{\"b\":\"c\"}}}\n",
                 &out)
          .ok());
}

TEST(TraceFormatTest, RejectsStructuralErrors) {
  const std::string header =
      "{\"kind\":\"header\",\"version\":\"1\",\"seed\":\"0\","
      "\"clock_ms\":\"0\",\"workload\":\"w\",\"mode\":\"SPEC\","
      "\"tags\":{}}\n";
  const std::string statement =
      "{\"kind\":\"statement\",\"sql\":\"SELECT 1\",\"plan_fp\":\"1\","
      "\"template\":\"0\",\"mode\":\"none\",\"rows\":\"0\","
      "\"digest\":\"0\"}\n";

  Trace out;
  // The well-formed baseline parses.
  ASSERT_TRUE(ParseTrace(header + statement, &out).ok());

  EXPECT_FALSE(ParseTrace(statement + header, &out).ok())
      << "event before header";
  EXPECT_FALSE(ParseTrace(header + header, &out).ok()) << "duplicate header";
  Status st = ParseTrace(statement, &out);
  EXPECT_FALSE(st.ok()) << "missing header";

  std::string unknown_kind = header +
                             "{\"kind\":\"checkpoint\",\"sql\":\"x\"}\n";
  EXPECT_FALSE(ParseTrace(unknown_kind, &out).ok());

  std::string bad_mode = statement;
  const size_t at = bad_mode.find("none");
  bad_mode.replace(at, 4, "telepathy");
  EXPECT_FALSE(ParseTrace(header + bad_mode, &out).ok()) << "unknown mode";

  std::string missing_digest = statement;
  const size_t dg = missing_digest.find(",\"digest\":\"0\"");
  missing_digest.erase(dg, std::string(",\"digest\":\"0\"").size());
  EXPECT_FALSE(ParseTrace(header + missing_digest, &out).ok());

  std::string bad_params =
      header +
      "{\"kind\":\"statement\",\"sql\":\"SELECT 1\","
      "\"params\":{\"p\":\"i32:oops\"},\"plan_fp\":\"1\",\"template\":\"0\","
      "\"mode\":\"none\",\"rows\":\"0\",\"digest\":\"0\"}\n";
  EXPECT_FALSE(ParseTrace(bad_params, &out).ok()) << "undecodable param";
}

TEST(TraceFormatTest, RejectsVersionSkew) {
  auto with_version = [](const std::string& v) {
    return "{\"kind\":\"header\",\"version\":\"" + v +
           "\",\"seed\":\"0\",\"clock_ms\":\"0\",\"workload\":\"w\","
           "\"mode\":\"SPEC\",\"tags\":{}}\n";
  };
  Trace out;
  ASSERT_TRUE(ParseTrace(with_version("1"), &out).ok());
  Status st = ParseTrace(with_version("2"), &out);
  EXPECT_FALSE(st.ok()) << "forward version skew must be rejected";
  EXPECT_NE(st.message().find("version"), std::string::npos);
  EXPECT_FALSE(ParseTrace(with_version("0"), &out).ok());
  EXPECT_FALSE(ParseTrace(with_version("-3"), &out).ok());
  EXPECT_FALSE(ParseTrace(with_version("banana"), &out).ok());
}

TEST(TraceFormatTest, TruncationAlwaysFailsSoft) {
  const std::string full = SerializeTrace(SampleTrace());
  Trace complete;
  ASSERT_TRUE(ParseTrace(full, &complete).ok());
  // Every prefix must either parse as a (shorter) valid trace — a cut at
  // a line boundary — or come back as a Status; nothing may abort.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    Trace out;
    Status st = ParseTrace(full.substr(0, cut), &out);
    if (st.ok()) {
      EXPECT_LE(out.events.size(), complete.events.size()) << "cut " << cut;
    }
  }
}

TEST(TraceFormatTest, ReadTraceFileMissingIsNotFound) {
  Trace out;
  Status st = trace::ReadTraceFile("/nonexistent/trace.jsonl", &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, CapturesSqlAndPreparedStatements) {
  auto db = Database::OpenOrDie(TraceOptions());
  rollup::RollupOptions ropt;
  ropt.initial_rows = 2048;
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());

  TraceHeader header;
  header.seed = ropt.seed;
  header.workload = "recorder_unit";
  header.mode = RecyclerModeName(RecyclerMode::kSpeculation);
  TraceRecorder recorder(header);

  auto session = db->Connect();
  session->set_recorder(&recorder);

  const std::string q = "SELECT ts, sensor, value FROM events"
                        " WHERE value >= 900.0";
  ASSERT_TRUE(session->Sql(q).ok());
  ASSERT_TRUE(session->Sql(q).ok());  // exact repeat: a hit
  ASSERT_FALSE(session->Sql("SELEKT broken").ok());  // skipped, not recorded

  Status prep_status;
  auto stmt = session->Prepare(
      std::string_view("SELECT ts, sensor, value FROM events"
                       " WHERE value >= :lo AND value < :hi"),
      &prep_status);
  ASSERT_NE(stmt, nullptr) << prep_status.ToString();
  ParamMap bindings = {{"lo", 100.0}, {"hi", 400.0}};
  ASSERT_TRUE(stmt->Execute(bindings).ok());

  Trace t = recorder.Snapshot();
  EXPECT_EQ(t.header.workload, "recorder_unit");
  ASSERT_EQ(t.NumStatements(), 3);
  ASSERT_EQ(t.NumAppends(), 0);

  const StatementEvent& first = t.events[0].statement;
  EXPECT_EQ(first.sql, q);
  EXPECT_EQ(first.reuse_mode, ReuseMode::kNone);
  EXPECT_GT(first.rows, 0);
  EXPECT_NE(first.digest, 0u);
  EXPECT_NE(first.plan_fingerprint, 0u);
  EXPECT_FALSE(first.plan_explain.empty());

  const StatementEvent& second = t.events[1].statement;
  EXPECT_EQ(second.reuse_mode, ReuseMode::kExact);
  EXPECT_EQ(second.digest, first.digest);
  EXPECT_EQ(second.rows, first.rows);

  const StatementEvent& third = t.events[2].statement;
  EXPECT_NE(third.sql.find(":lo"), std::string::npos)
      << "template text, not the bound instance";
  EXPECT_TRUE(third.params == bindings);
  EXPECT_NE(third.template_hash, 0u);

  recorder.Clear();
  EXPECT_EQ(recorder.Snapshot().NumStatements(), 0);
  EXPECT_EQ(recorder.Snapshot().header.workload, "recorder_unit");

  // Detach: further statements are not recorded.
  session->set_recorder(&recorder);
  session->set_recorder(nullptr);
  ASSERT_TRUE(session->Sql(q).ok());
  EXPECT_EQ(recorder.Snapshot().NumStatements(), 0);
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// Records the rollup append workload: 3 rounds of the fixed statement
/// set with an append between rounds (the delta-maintenance shape, so
/// the trace contains materializations, exact hits, delta refreshes and
/// aggregate merges).
Trace RecordRollupTrace(const rollup::RollupOptions& ropt) {
  auto db = Database::OpenOrDie(TraceOptions());
  EXPECT_TRUE(rollup::Setup(db.get(), ropt).ok());

  TraceHeader header;
  header.seed = ropt.seed;
  header.workload = "rollup_append";
  header.mode = RecyclerModeName(RecyclerMode::kSpeculation);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  const std::vector<std::string> statements = rollup::RollupSql(ropt);
  for (int round = 0; round < 3; ++round) {
    for (const std::string& sql : statements) {
      Result r = session->Sql(sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    if (round == 2) break;
    const int64_t rows = db->catalog().GetTable("events")->num_rows();
    EXPECT_TRUE(
        db->AppendTable("events", *rollup::MakeBatch(512, rows, ropt)).ok());
    recorder.RecordAppend("events", 512, rows);
  }
  return recorder.Snapshot();
}

ReplayOptions RollupReplayOptions(const rollup::RollupOptions& ropt) {
  ReplayOptions options;
  options.append_provider = [ropt](const AppendEvent& a) {
    return rollup::MakeBatch(a.rows, a.start_row, ropt);
  };
  return options;
}

TEST(TraceReplayTest, SingleStreamReproducesDigestsAndModes) {
  rollup::RollupOptions ropt;
  ropt.initial_rows = 4096;
  Trace recorded = RecordRollupTrace(ropt);
  ASSERT_EQ(recorded.NumStatements(), 18);  // 6 statements x 3 rounds
  ASSERT_EQ(recorded.NumAppends(), 2);

  // The corpus must exercise the interesting modes, or this test proves
  // nothing about mode reproduction.
  int64_t delta_like = 0, hits = 0;
  for (const TraceEvent& e : recorded.events) {
    if (e.kind != TraceEvent::Kind::kStatement) continue;
    if (e.statement.reuse_mode == ReuseMode::kDelta ||
        e.statement.reuse_mode == ReuseMode::kAggMerge) {
      ++delta_like;
    }
    if (e.statement.reuse_mode != ReuseMode::kNone) ++hits;
  }
  EXPECT_GT(delta_like, 0) << "append rounds should produce delta reuse";
  EXPECT_GT(hits, 0);

  // Round-trip through the serialized text, then replay on a fresh
  // engine: the parsed trace must carry everything replay needs.
  Trace parsed;
  ASSERT_TRUE(ParseTrace(SerializeTrace(recorded), &parsed).ok());

  auto db = Database::OpenOrDie(TraceOptions());
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  TraceReplayer replayer(db.get(), RollupReplayOptions(ropt));
  ReplayReport report;
  Status st = replayer.Replay(parsed, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.statements, 18);
  EXPECT_EQ(report.appends, 2);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.digest_mismatches, 0);
  EXPECT_EQ(report.mode_mismatches, 0);
  EXPECT_EQ(report.plan_mismatches, 0);
  EXPECT_DOUBLE_EQ(report.recorded_hit_rate, report.replayed_hit_rate);
}

TEST(TraceReplayTest, DetectsChooserDivergenceAsModeMismatch) {
  rollup::RollupOptions ropt;
  ropt.initial_rows = 4096;
  Trace recorded = RecordRollupTrace(ropt);

  // Replay with delta maintenance disabled: appends now hard-invalidate,
  // so recorded delta hits come back as misses/materializations. Results
  // must STILL be bit-identical (transparency) — only modes diverge.
  DatabaseOptions options = TraceOptions();
  options.recycler.enable_delta_maintenance = false;
  auto db = Database::OpenOrDie(options);
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  ReplayOptions ropts = RollupReplayOptions(ropt);
  ropts.check_plan_shape = false;  // different chooser, different plans
  TraceReplayer replayer(db.get(), ropts);
  ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.mode_mismatches, 0);
  EXPECT_EQ(report.digest_mismatches, 0)
      << "disabling a reuse path must never change results:\n"
      << report.ToString();
  // The report names the divergence readably.
  const std::string text = report.ToString();
  EXPECT_NE(text.find("DIVERGED"), std::string::npos);
  EXPECT_NE(text.find("reuse_mode"), std::string::npos);
}

TEST(TraceReplayTest, DetectsChangedBaseDataAsDigestMismatch) {
  rollup::RollupOptions ropt;
  ropt.initial_rows = 4096;
  Trace recorded = RecordRollupTrace(ropt);

  // Same row counts, different generator seed: append row-count checks
  // pass but the data differs, so digests must flag it.
  rollup::RollupOptions drifted = ropt;
  drifted.seed = ropt.seed + 1;
  auto db = Database::OpenOrDie(TraceOptions());
  ASSERT_TRUE(rollup::Setup(db.get(), drifted).ok());
  ReplayOptions ropts = RollupReplayOptions(drifted);
  ropts.strict_modes = false;
  ropts.check_plan_shape = false;
  TraceReplayer replayer(db.get(), ropts);
  ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.digest_mismatches, 0);
}

TEST(TraceReplayTest, AppendDriftFailsWithStatusNotAbort) {
  rollup::RollupOptions ropt;
  ropt.initial_rows = 4096;
  Trace recorded = RecordRollupTrace(ropt);

  // Fresh engine whose events table starts at a different size: the
  // first append's start_row cross-check must fail loudly.
  rollup::RollupOptions small = ropt;
  small.initial_rows = 1024;
  auto db = Database::OpenOrDie(TraceOptions());
  ASSERT_TRUE(rollup::Setup(db.get(), small).ok());
  TraceReplayer replayer(db.get(), RollupReplayOptions(small));
  ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("drift"), std::string::npos);
}

TEST(TraceReplayTest, RequiresProviderAndSingleStreamForAppends) {
  rollup::RollupOptions ropt;
  ropt.initial_rows = 2048;
  Trace recorded = RecordRollupTrace(ropt);

  auto db = Database::OpenOrDie(TraceOptions());
  ASSERT_TRUE(rollup::Setup(db.get(), ropt).ok());
  {
    TraceReplayer replayer(db.get(), ReplayOptions{});  // no provider
    ReplayReport report;
    EXPECT_FALSE(replayer.Replay(recorded, &report).ok());
  }
  {
    ReplayOptions ropts = RollupReplayOptions(ropt);
    ropts.concurrency = 4;
    TraceReplayer replayer(db.get(), ropts);
    ReplayReport report;
    EXPECT_FALSE(replayer.Replay(recorded, &report).ok());
  }
}

TEST(TraceReplayTest, RejectsPlanBuiltStatements) {
  Trace t;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kStatement;  // sql left empty
  t.events.push_back(e);
  auto db = Database::OpenOrDie(TraceOptions());
  TraceReplayer replayer(db.get());
  ReplayReport report;
  EXPECT_FALSE(replayer.Replay(t, &report).ok());
}

/// Records the SkyServer region sweep as SQL (no appends): misses,
/// partial stitches and an exact-repeat tail.
Trace RecordSweepTrace(int64_t objects) {
  auto db = Database::OpenOrDie(TraceOptions());
  skyserver::Setup(objects, &db->catalog());

  TraceHeader header;
  header.seed = 20130415;
  header.workload = "skyserver_sweep";
  header.mode = RecyclerModeName(RecyclerMode::kSpeculation);
  header.tags["objects"] = std::to_string(objects);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  Rng rng(header.seed);
  std::vector<std::string> sweep =
      skyserver::GenerateRegionSweepSql(12, &rng);
  for (const std::string& sql : sweep) {
    Result r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  for (int i = 0; i < 6; ++i) {  // exact-repeat tail
    Result r = session->Sql(sweep[i]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  return recorder.Snapshot();
}

TEST(TraceReplayTest, ConcurrentReplayKeepsDigestsStrict) {
  Trace recorded = RecordSweepTrace(8000);
  ASSERT_EQ(recorded.NumStatements(), 18);
  EXPECT_GT(recorded.HitRate(), 0.0);

  auto db = Database::OpenOrDie(TraceOptions());
  skyserver::Setup(8000, &db->catalog());
  ReplayOptions ropts;
  ropts.concurrency = 4;
  ropts.strict_modes = false;  // modes are schedule-dependent at N > 1
  ropts.check_plan_shape = false;
  TraceReplayer replayer(db.get(), ropts);
  ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(report.statements, 4 * 18);
  EXPECT_EQ(report.errors, 0);
  EXPECT_EQ(report.digest_mismatches, 0) << report.ToString();
  // Shared warm cache: the aggregate hit rate can only improve on the
  // recording, so the one-sided tolerance gate holds.
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(report.replayed_hit_rate + 2.0, report.recorded_hit_rate);
}

TEST(TraceReplayTest, SingleStreamSweepStrictIncludingPlanShape) {
  Trace recorded = RecordSweepTrace(8000);
  // A sweep statement must have recorded a stitched UnionAll shape, or
  // the strict plan diff below is vacuous.
  bool saw_union = false;
  for (const TraceEvent& e : recorded.events) {
    if (e.kind == TraceEvent::Kind::kStatement &&
        e.statement.plan_explain.find("UnionAll") != std::string::npos) {
      saw_union = true;
    }
  }
  EXPECT_TRUE(saw_union);

  auto db = Database::OpenOrDie(TraceOptions());
  skyserver::Setup(8000, &db->catalog());
  TraceReplayer replayer(db.get());  // strict defaults, plan shape on
  ReplayReport report;
  Status st = replayer.Replay(recorded, &report);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.plan_mismatches, 0);
  EXPECT_EQ(report.mode_mismatches, 0);
  EXPECT_EQ(report.digest_mismatches, 0);
}

// ---------------------------------------------------------------------------
// Explain determinism (two fresh engines, identical text)
// ---------------------------------------------------------------------------

/// Runs the sweep on a fresh engine and returns every post-rewrite
/// Explain text in execution order.
std::vector<std::string> SweepExplains() {
  auto db = Database::OpenOrDie(TraceOptions());
  skyserver::Setup(8000, &db->catalog());
  auto session = db->Connect();
  Rng rng(20130415);
  std::vector<std::string> explains;
  for (const std::string& sql : skyserver::GenerateRegionSweepSql(12, &rng)) {
    Result r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    explains.push_back(r.trace().plan_explain);
  }
  return explains;
}

TEST(ExplainDeterminismTest, FreshEnginesProduceIdenticalExplains) {
  std::vector<std::string> a = SweepExplains();
  std::vector<std::string> b = SweepExplains();
  ASSERT_EQ(a.size(), b.size());
  bool saw_union = false;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "query " << i
                          << ": Explain text differs across engine "
                             "instances";
    if (a[i].find("UnionAll") != std::string::npos) saw_union = true;
  }
  // The sweep must produce stitched plans, or branch ordering — the
  // historical nondeterminism risk — was never exercised.
  EXPECT_TRUE(saw_union);
}

}  // namespace
}  // namespace recycledb
