// Tests for subsumption-based reuse (§IV-A): column subsumption,
// tuple subsumption for selections / aggregates / top-N, edge maintenance.
#include <gtest/gtest.h>

#include "recycler/recycler.h"
#include "recycler/subsumption.h"
#include "test_util.h"

namespace recycledb {
namespace {

class SubsumptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32},
              {"g", TypeId::kInt32},
              {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 10000; ++i) {
      t->AppendRow({int32_t{i % 97}, int32_t{i % 7},
                    static_cast<double>(i % 331)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  Recycler MakeRecycler(bool subsumption = true) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.enable_subsumption = subsumption;
    return Recycler(&catalog_, cfg);
  }

  std::multiset<std::string> RunOff(const PlanPtr& plan) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;
    Recycler off(&catalog_, cfg);
    return recycledb::testing::RowMultiset(*off.Execute(plan).table);
  }

  Catalog catalog_;
};

TEST_F(SubsumptionTest, SelectConjunctSubsetReused) {
  Recycler rec = MakeRecycler();
  ExprPtr base = Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{40}));
  // Query 1: the broader selection (k > 40); cache its result via an
  // aggregate on top (final result) — no: cache the SELECT itself by
  // making it the query root.
  PlanPtr broad = PlanNode::Select(PlanNode::Scan("t", {"k", "g", "v"}), base);
  rec.Execute(broad);
  ASSERT_GE(rec.graph().Stats().num_cached, 1);

  // Query 2: k > 40 AND g = 3 — derivable by re-filtering the cache.
  PlanPtr narrow = PlanNode::Select(
      PlanNode::Scan("t", {"k", "g", "v"}),
      Expr::And(base, Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  PlanPtr narrow_copy = PlanNode::Select(
      PlanNode::Scan("t", {"k", "g", "v"}),
      Expr::And(base, Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  QueryTrace trace;
  ExecResult r = rec.Execute(narrow, &trace);
  EXPECT_GE(trace.num_subsumption_reuses, 1);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), RunOff(narrow_copy));
}

TEST_F(SubsumptionTest, AggregateFinerGroupingReaggregated) {
  Recycler rec = MakeRecycler();
  // Query 1 caches the finer cube (g, k) with sum/count partials.
  PlanPtr fine = PlanNode::Aggregate(
      PlanNode::Scan("t", {"k", "g", "v"}), {"g", "k"},
      {{AggFunc::kSum, Expr::Column("v"), "sv"},
       {AggFunc::kCount, Expr::Column("v"), "cv"}});
  rec.Execute(fine);
  ASSERT_GE(rec.graph().Stats().num_cached, 1);

  // Query 2 wants the coarser grouping (g): derivable by re-aggregation,
  // including the avg from sum+count partials.
  auto coarse = [&] {
    return PlanNode::Aggregate(
        PlanNode::Scan("t", {"k", "g", "v"}), {"g"},
        {{AggFunc::kSum, Expr::Column("v"), "sv"},
         {AggFunc::kCount, Expr::Column("v"), "cv"},
         {AggFunc::kAvg, Expr::Column("v"), "av"}});
  };
  QueryTrace trace;
  ExecResult r = rec.Execute(coarse(), &trace);
  EXPECT_GE(trace.num_subsumption_reuses, 1);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), RunOff(coarse()));
}

TEST_F(SubsumptionTest, AggregateColumnSubsetProjected) {
  Recycler rec = MakeRecycler();
  // Query 1: sum + min over g.
  PlanPtr wide = PlanNode::Aggregate(
      PlanNode::Scan("t", {"g", "v"}), {"g"},
      {{AggFunc::kSum, Expr::Column("v"), "sv"},
       {AggFunc::kMin, Expr::Column("v"), "mn"}});
  rec.Execute(wide);
  // Query 2: only the sum — column subsumption (paper's F-example).
  auto narrow = [&] {
    return PlanNode::Aggregate(PlanNode::Scan("t", {"g", "v"}), {"g"},
                               {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  };
  QueryTrace trace;
  ExecResult r = rec.Execute(narrow(), &trace);
  EXPECT_GE(trace.num_subsumption_reuses, 1);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), RunOff(narrow()));
}

TEST_F(SubsumptionTest, TopNPrefixOfCachedLargerTopN) {
  Recycler rec = MakeRecycler();
  PlanPtr big = PlanNode::TopN(PlanNode::Scan("t", {"k", "v"}),
                               {{"v", false}, {"k", true}}, 500);
  rec.Execute(big);
  auto small = [&] {
    return PlanNode::TopN(PlanNode::Scan("t", {"k", "v"}),
                          {{"v", false}, {"k", true}}, 10);
  };
  QueryTrace trace;
  ExecResult r = rec.Execute(small(), &trace);
  EXPECT_GE(trace.num_subsumption_reuses, 1);
  ASSERT_EQ(r.table->num_rows(), 10);
  EXPECT_EQ(recycledb::testing::RowMultiset(*r.table), RunOff(small()));
}

TEST_F(SubsumptionTest, TopNWithDifferentKeysNotSubsumed) {
  Recycler rec = MakeRecycler();
  rec.Execute(PlanNode::TopN(PlanNode::Scan("t", {"k", "v"}),
                             {{"v", false}}, 500));
  QueryTrace trace;
  rec.Execute(PlanNode::TopN(PlanNode::Scan("t", {"k", "v"}),
                             {{"k", false}}, 10),
              &trace);
  EXPECT_EQ(trace.num_subsumption_reuses, 0);
}

TEST_F(SubsumptionTest, DisabledSubsumptionFallsBackToComputing) {
  Recycler rec = MakeRecycler(/*subsumption=*/false);
  ExprPtr base = Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{40}));
  rec.Execute(PlanNode::Select(PlanNode::Scan("t", {"k", "g", "v"}), base));
  QueryTrace trace;
  PlanPtr narrow = PlanNode::Select(
      PlanNode::Scan("t", {"k", "g", "v"}),
      Expr::And(base, Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  ExecResult r = rec.Execute(narrow, &trace);
  EXPECT_EQ(trace.num_subsumption_reuses, 0);
  EXPECT_GT(r.table->num_rows(), 0);
}

TEST_F(SubsumptionTest, SubsumptionEdgeRecordedInGraph) {
  Recycler rec = MakeRecycler();
  ExprPtr base = Expr::Gt(Expr::Column("k"), Expr::Literal(int64_t{40}));
  rec.Execute(PlanNode::Select(PlanNode::Scan("t", {"k", "g", "v"}), base));
  PlanPtr narrow = PlanNode::Select(
      PlanNode::Scan("t", {"k", "g", "v"}),
      Expr::And(base, Expr::Eq(Expr::Column("g"), Expr::Literal(int64_t{3}))));
  rec.Execute(narrow);
  bool found_edge = false;
  std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
  for (const auto& n : rec.graph().nodes()) {
    if (!n->subsumes.empty()) found_edge = true;
  }
  EXPECT_TRUE(found_edge);
  EXPECT_GE(rec.counters().subsumption_reuses.load(), 1);
}

// ---- direct unit tests of the ParamsSubsume predicate --------------------

TEST(ParamsSubsumeTest, SelectConjuncts) {
  ExprPtr a = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{1}));
  ExprPtr b = Expr::Lt(Expr::Column("y"), Expr::Literal(int64_t{2}));
  PlanPtr broad = PlanNode::Select(nullptr, a)->CloneParamsRenamed({});
  PlanPtr narrow = PlanNode::Select(nullptr, Expr::And(a, b))
                       ->CloneParamsRenamed({});
  EXPECT_TRUE(ParamsSubsume(*broad, *narrow));
  EXPECT_FALSE(ParamsSubsume(*narrow, *broad));
}

TEST(ParamsSubsumeTest, AggregateGroupsAndAvg) {
  PlanPtr fine = PlanNode::Aggregate(
      nullptr, {"a", "b"},
      {{AggFunc::kSum, Expr::Column("v"), "s"},
       {AggFunc::kCount, Expr::Column("v"), "c"}})->CloneParamsRenamed({});
  PlanPtr coarse_avg = PlanNode::Aggregate(
      nullptr, {"a"}, {{AggFunc::kAvg, Expr::Column("v"), "av"}})
      ->CloneParamsRenamed({});
  EXPECT_TRUE(ParamsSubsume(*fine, *coarse_avg));  // avg from sum+count
  PlanPtr coarse_min = PlanNode::Aggregate(
      nullptr, {"a"}, {{AggFunc::kMin, Expr::Column("v"), "m"}})
      ->CloneParamsRenamed({});
  EXPECT_FALSE(ParamsSubsume(*fine, *coarse_min));  // min not derivable
}

TEST(ParamsSubsumeTest, TopNLimits) {
  PlanPtr big = PlanNode::TopN(nullptr, {{"v", false}}, 100)
                    ->CloneParamsRenamed({});
  PlanPtr small = PlanNode::TopN(nullptr, {{"v", false}}, 10)
                      ->CloneParamsRenamed({});
  EXPECT_TRUE(ParamsSubsume(*big, *small));
  EXPECT_FALSE(ParamsSubsume(*small, *big));
}

}  // namespace
}  // namespace recycledb
