// Tests for the SQL text front-end: parser/lowering round-trips onto the
// builder IR (identical canonical fingerprints), one-call Session::Sql
// execution with bit-identical results, caret-snippet error positions
// (the engine never aborts on bad SQL), prepared SQL statements sharing
// template identity with the builder form, a fixed-seed fuzz smoke, and
// a concurrent multi-session SQL stress for the TSan sweep.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "plan/canonicalize.h"
#include "recycledb/recycledb.h"
#include "sql/lower.h"
#include "test_util.h"

namespace recycledb {
namespace {

using recycledb::testing::RowMultiset;

TablePtr MakeSalesTable(int rows = 20000) {
  Schema schema({{"city", TypeId::kString},
                 {"year", TypeId::kInt32},
                 {"sales", TypeId::kDouble}});
  TablePtr t = MakeTable(schema);
  const char* cities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
  Rng rng(7);
  for (int i = 0; i < rows; ++i) {
    t->AppendRow({std::string(cities[rng.Uniform(0, 2)]),
                  static_cast<int32_t>(rng.Uniform(2005, 2012)),
                  static_cast<double>(rng.Uniform(10, 5000))});
  }
  return t;
}

std::unique_ptr<Database> OpenSalesDb(int rows = 20000) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  EXPECT_TRUE(db->CreateTable("sales", MakeSalesTable(rows)).ok());
  return db;
}

/// Canonical template fingerprint of a SQL statement (must parse).
std::string SqlCanonFp(Database& db, const std::string& text) {
  PlanPtr plan;
  Status st = sql::SqlToPlan(text, db.catalog(), &plan);
  EXPECT_TRUE(st.ok()) << st.ToString();
  if (!st.ok()) return "";
  return CanonicalizePlan(plan)->TemplateFingerprint();
}

std::string QueryCanonFp(const Query& q) {
  return CanonicalizePlan(q.plan())->TemplateFingerprint();
}

/// Exact cell-by-cell equality, row order included (bit-identity: no
/// rounding, DatumCompare is exact on every scalar type).
void ExpectTablesBitIdentical(const TablePtr& a, const TablePtr& b) {
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->num_rows(), b->num_rows());
  ASSERT_EQ(a->num_columns(), b->num_columns());
  for (int c = 0; c < a->num_columns(); ++c) {
    EXPECT_EQ(a->schema().field(c).name, b->schema().field(c).name);
  }
  for (int64_t r = 0; r < a->num_rows(); ++r) {
    for (int c = 0; c < a->num_columns(); ++c) {
      EXPECT_EQ(DatumCompare(a->Get(r, c), b->Get(r, c)), 0)
          << "row " << r << " col " << c;
    }
  }
}

// ---------------------------------------------------------------------------
// Round-trip: SQL lowers to the same canonical plan as the builder
// ---------------------------------------------------------------------------

TEST(SqlRoundTrip, SelectStarIsThePlainScan) {
  auto db = OpenSalesDb(100);
  Query builder = db->Scan("sales", {"city", "year", "sales"});
  EXPECT_EQ(SqlCanonFp(*db, "SELECT * FROM sales"), QueryCanonFp(builder));
  EXPECT_EQ(SqlCanonFp(*db, "SELECT city, year, sales FROM sales"),
            QueryCanonFp(builder));
}

TEST(SqlRoundTrip, FilterAndProjection) {
  auto db = OpenSalesDb(100);
  Query builder =
      db->Scan("sales", {"city", "year"})
          .Filter(Expr::Ge(Expr::Column("year"), Expr::Literal(int32_t{2010})))
          .Project({{Expr::Column("city"), "city"}});
  EXPECT_EQ(SqlCanonFp(*db, "SELECT city FROM sales WHERE year >= 2010"),
            QueryCanonFp(builder));
}

TEST(SqlRoundTrip, AggregateWithOrderBy) {
  auto db = OpenSalesDb(100);
  Query builder =
      db->Scan("sales", {"city", "year", "sales"})
          .Filter(Expr::Ge(Expr::Column("year"), Expr::Literal(int32_t{2010})))
          .Aggregate({"city"},
                     {{AggFunc::kSum, Expr::Column("sales"), "total"}})
          .OrderBy({{"total", false}});
  EXPECT_EQ(SqlCanonFp(*db,
                       "SELECT city, SUM(sales) AS total FROM sales "
                       "WHERE year >= 2010 GROUP BY city "
                       "ORDER BY total DESC"),
            QueryCanonFp(builder));
}

TEST(SqlRoundTrip, OrderByWithLimitLowersToTopN) {
  auto db = OpenSalesDb(100);
  Query builder =
      db->Scan("sales", {"city", "sales"})
          .Filter(Expr::Gt(Expr::Column("sales"), Expr::Literal(100.0)))
          .TopN({{"sales", false}, {"city", true}}, 7);
  EXPECT_EQ(SqlCanonFp(*db,
                       "SELECT city, sales FROM sales WHERE sales > 100.0 "
                       "ORDER BY sales DESC, city LIMIT 7"),
            QueryCanonFp(builder));
}

TEST(SqlRoundTrip, SyntacticNoiseCanonicalizesAway) {
  // Flipped comparison, BETWEEN, redundant conjunct, NOT, folded
  // arithmetic: all one canonical plan.
  auto db = OpenSalesDb(100);
  const std::string base =
      "SELECT city FROM sales WHERE year >= 2008 AND year <= 2011";
  for (const char* variant : {
           "SELECT city FROM sales WHERE 2008 <= year AND year <= 2011",
           "SELECT city FROM sales WHERE year BETWEEN 2008 AND 2011",
           "SELECT city FROM sales WHERE year <= 2011 AND year >= 2008",
           "SELECT city FROM sales WHERE year BETWEEN 2000+8 AND 2011",
           "SELECT city FROM sales WHERE NOT (year < 2008) AND year <= 2011",
           "SELECT city FROM sales WHERE year >= 2008 AND year <= 2011 "
           "AND year >= 2006",
       }) {
    EXPECT_EQ(SqlCanonFp(*db, variant), SqlCanonFp(*db, base)) << variant;
  }
}

// ---------------------------------------------------------------------------
// Execution through the one-call API
// ---------------------------------------------------------------------------

TEST(SqlExecution, OrderedResultBitIdenticalToBuilder) {
  auto db = OpenSalesDb();
  Query builder =
      db->Scan("sales", {"city", "year", "sales"})
          .Filter(Expr::Ge(Expr::Column("year"), Expr::Literal(int32_t{2009})))
          .Aggregate({"city"},
                     {{AggFunc::kSum, Expr::Column("sales"), "total"}})
          .OrderBy({{"total", false}});
  Result from_builder = db->Execute(builder);
  ASSERT_TRUE(from_builder.ok()) << from_builder.status().ToString();

  Result from_sql = db->Sql(
      "SELECT city, SUM(sales) AS total FROM sales "
      "WHERE year >= 2009 GROUP BY city ORDER BY total DESC");
  ASSERT_TRUE(from_sql.ok()) << from_sql.status().ToString();
  ExpectTablesBitIdentical(from_sql.table(), from_builder.table());
  // Identical canonical plans: the SQL run is answered from the cache
  // entry the builder run materialized.
  EXPECT_TRUE(from_sql.recycled());
}

TEST(SqlExecution, UnorderedSelectMatchesBuilderMultiset) {
  auto db = OpenSalesDb();
  Query builder =
      db->Scan("sales", {"city", "year", "sales"})
          .Filter(Expr::Lt(Expr::Column("sales"), Expr::Literal(800.0)));
  Result from_builder = db->Execute(builder);
  ASSERT_TRUE(from_builder.ok());
  Result from_sql = db->Sql("SELECT * FROM sales WHERE sales < 800.0");
  ASSERT_TRUE(from_sql.ok()) << from_sql.status().ToString();
  EXPECT_EQ(RowMultiset(*from_sql.table()), RowMultiset(*from_builder.table()));
}

TEST(SqlExecution, RepeatedStatementHitsTheCache) {
  auto db = OpenSalesDb();
  const char* q = "SELECT city, COUNT(*) AS n FROM sales GROUP BY city";
  Result first = db->Sql(q);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.recycled());
  Result second = db->Sql(q);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.recycled());
  ExpectTablesBitIdentical(second.table(), first.table());
}

TEST(SqlExecution, SessionStatsCountSqlQueries) {
  auto db = OpenSalesDb(500);
  auto session = db->Connect({});
  ASSERT_TRUE(session->Sql("SELECT city FROM sales LIMIT 3").ok());
  EXPECT_FALSE(session->Sql("SELECT bogus FROM sales").ok());
  SessionStats stats = session->stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.errors, 1);
}

// ---------------------------------------------------------------------------
// Recoverable errors with line/column caret snippets
// ---------------------------------------------------------------------------

TEST(SqlErrors, SyntaxErrorCarriesPositionAndCaret) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT FROM sales");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("line 1, column 8"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("expected expression"),
            std::string::npos);
  EXPECT_NE(r.status().message().find('^'), std::string::npos);
}

TEST(SqlErrors, UnknownColumnNamesTheColumn) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT bogus FROM sales");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown column 'bogus'"),
            std::string::npos);
  EXPECT_NE(r.status().message().find("line 1, column 8"), std::string::npos);
}

TEST(SqlErrors, UnknownTableNamesTheTable) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city FROM shops");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown table 'shops'"),
            std::string::npos);
}

TEST(SqlErrors, MultiLineStatementReportsTheRightLine) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city\nFROM sales\nWHERE yearz > 3");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 3, column 7"), std::string::npos)
      << r.status().ToString();
  EXPECT_NE(r.status().message().find("unknown column 'yearz'"),
            std::string::npos);
}

TEST(SqlErrors, NullLiteralsAreRejectedNotAborted) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city FROM sales WHERE city = NULL");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("NULL literals are not supported"),
            std::string::npos);
}

TEST(SqlErrors, ParameterPlaceholdersMustGoThroughPrepare) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city FROM sales WHERE year >= :y");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Prepare"), std::string::npos)
      << r.status().ToString();
}

TEST(SqlErrors, UnterminatedStringIsALexError) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city FROM sales WHERE city = 'Edinb");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 1"), std::string::npos);
}

TEST(SqlErrors, TrailingGarbageAfterStatement) {
  auto db = OpenSalesDb(100);
  Result r = db->Sql("SELECT city FROM sales; SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("end of statement"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prepared SQL statements
// ---------------------------------------------------------------------------

TEST(SqlPrepared, BindAndExecute) {
  auto db = OpenSalesDb();
  Status st;
  auto stmt = db->Prepare(
      "SELECT city, SUM(sales) AS total FROM sales "
      "WHERE year >= :y GROUP BY city ORDER BY total DESC",
      &st);
  ASSERT_NE(stmt, nullptr) << st.ToString();
  EXPECT_EQ(stmt->parameters(), std::set<std::string>{"y"});

  Result r = stmt->Bind("y", int32_t{2010}).Execute();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.schema().Names(), (std::vector<std::string>{"city", "total"}));

  // Rebinding the same constant is answered from the cache.
  Result again = stmt->Execute({{"y", int32_t{2010}}});
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.recycled());
  ExpectTablesBitIdentical(again.table(), r.table());
}

TEST(SqlPrepared, SharesTemplateIdentityWithBuilderForm) {
  auto db = OpenSalesDb();
  Status st;
  auto from_sql = db->Prepare(
      "SELECT city, SUM(sales) AS total FROM sales "
      "WHERE year >= :y GROUP BY city ORDER BY total DESC",
      &st);
  ASSERT_NE(from_sql, nullptr) << st.ToString();

  Query builder =
      db->Scan("sales", {"city", "year", "sales"})
          .Filter(Expr::Ge(Expr::Column("year"), Expr::Param("y")))
          .Aggregate({"city"},
                     {{AggFunc::kSum, Expr::Column("sales"), "total"}})
          .OrderBy({{"total", false}});
  auto from_builder = db->Prepare(builder, &st);
  ASSERT_NE(from_builder, nullptr) << st.ToString();

  // One template: same fingerprint, same hash, one TemplateStats entry.
  EXPECT_EQ(from_sql->template_fingerprint(),
            from_builder->template_fingerprint());
  EXPECT_EQ(from_sql->template_hash(), from_builder->template_hash());

  Result a = from_sql->Execute({{"y", int32_t{2009}}});
  ASSERT_TRUE(a.ok());
  Result b = from_builder->Execute({{"y", int32_t{2009}}});
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b.recycled());  // the SQL execution warmed the shared entry
  ExpectTablesBitIdentical(b.table(), a.table());
  EXPECT_EQ(from_builder->stats().executions, 2);
}

TEST(SqlPrepared, BadSqlReturnsNullWithReason) {
  auto db = OpenSalesDb(100);
  Status st;
  auto stmt = db->Prepare("SELECT FROM sales", &st);
  EXPECT_EQ(stmt, nullptr);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 1, column 8"), std::string::npos);
}

TEST(SqlPrepared, ExplainShowsPreCanonicalizationView) {
  auto db = OpenSalesDb(100);
  Status st;
  // `2005 < year` plus a foldable constant: the canonicalizer rewrites
  // the template, so Explain shows both forms with their fingerprints.
  auto stmt = db->Prepare(
      "SELECT city FROM sales WHERE 2005 < year AND year >= 2000+5", &st);
  ASSERT_NE(stmt, nullptr) << st.ToString();
  std::string explain = stmt->Explain();
  EXPECT_NE(explain.find("pre-canonicalization"), std::string::npos) << explain;

  // An already-canonical template has no second view.
  auto plain = db->Prepare("SELECT city FROM sales WHERE year > 2005", &st);
  ASSERT_NE(plain, nullptr) << st.ToString();
  EXPECT_EQ(plain->Explain().find("pre-canonicalization"), std::string::npos);
  // Both statements describe the same canonical template.
  EXPECT_EQ(stmt->template_hash(), plain->template_hash());
}

// ---------------------------------------------------------------------------
// Fuzz smoke: mutated statements must never crash the front-end
// ---------------------------------------------------------------------------

TEST(SqlFuzz, MutatedStatementsNeverAbort) {
  auto db = OpenSalesDb(200);
  const char* bases[] = {
      "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2010 "
      "GROUP BY city ORDER BY total DESC LIMIT 5",
      "SELECT * FROM sales WHERE sales BETWEEN 10.0 AND 99.5 AND "
      "city IN ('Edinburgh', 'Brisbane')",
      "SELECT city FROM sales WHERE NOT (year < 2008) AND city LIKE '%bur%'",
      "SELECT year, sales FROM sales WHERE sales / 2.0 > 100 OR year = 2005",
      "SELECT city c FROM sales WHERE city = 'Amsterdam' ORDER BY c",
  };
  const char kBytes[] = "()*,<>=!:;'\"%+-/ .xq1\n";
  const char* env = std::getenv("RECYCLEDB_FUZZ_ITERS");
  const int iters = env != nullptr && std::atoi(env) > 0 ? std::atoi(env) : 400;
  Rng rng(42);
  int parsed_ok = 0;
  for (int i = 0; i < iters; ++i) {
    std::string s = bases[rng.Uniform(0, 4)];
    switch (rng.Uniform(0, 2)) {
      case 0:  // truncate
        s = s.substr(0, rng.Uniform(0, static_cast<int>(s.size())));
        break;
      case 1:  // replace a byte
        s[rng.Uniform(0, static_cast<int>(s.size()) - 1)] =
            kBytes[rng.Uniform(0, static_cast<int>(sizeof(kBytes)) - 2)];
        break;
      default:  // insert a byte
        s.insert(s.begin() + rng.Uniform(0, static_cast<int>(s.size())),
                 kBytes[rng.Uniform(0, static_cast<int>(sizeof(kBytes)) - 2)]);
        break;
    }
    Result r = db->Sql(s);  // must return, never abort
    if (r.ok()) ++parsed_ok;
  }
  // Single-byte edits leave most statements valid often enough that a
  // zero count would mean the harness stopped exercising execution.
  EXPECT_GT(parsed_ok, 0);
}

// ---------------------------------------------------------------------------
// Concurrency: many sessions streaming SQL text (TSan-labeled suite)
// ---------------------------------------------------------------------------

TEST(SqlConcurrency, ConcurrentSessionsShareCanonicalCacheEntries) {
  auto db = OpenSalesDb(5000);
  // Three syntactic variants of one canonical query plus two distinct
  // queries: threads race parse -> canonicalize -> recycler.
  const std::vector<std::string> statements = {
      "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2009 "
      "GROUP BY city ORDER BY total DESC",
      "SELECT city, SUM(sales) AS total FROM sales WHERE 2009 <= year "
      "GROUP BY city ORDER BY total DESC",
      "SELECT city, SUM(sales) AS total FROM sales WHERE NOT (year < 2009) "
      "GROUP BY city ORDER BY total DESC",
      "SELECT * FROM sales WHERE sales < 300.0",
      "SELECT city, COUNT(*) AS n FROM sales GROUP BY city",
  };
  // Reference results from a recycler-bypassing session.
  std::vector<std::multiset<std::string>> expected;
  {
    SessionOptions bypass;
    bypass.bypass_recycler = true;
    auto ref = db->Connect(bypass);
    for (const auto& s : statements) {
      Result r = ref->Sql(s);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      expected.push_back(RowMultiset(*r.table()));
    }
  }
  constexpr int kThreads = 4;
  constexpr int kIters = 24;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db->Connect({});  // sessions are per-thread
      for (int i = 0; i < kIters; ++i) {
        size_t q = static_cast<size_t>((i + t) % statements.size());
        Result r = session->Sql(statements[q]);
        if (!r.ok() || RowMultiset(*r.table()) != expected[q]) ++failures[t];
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0);
  // The three variants share one canonical entry: the graph holds fewer
  // distinct roots than raw statement texts.
  EXPECT_GE(db->counters().reuses.load(), 1);
}

}  // namespace
}  // namespace recycledb
