// Tests for the Recycler facade: mode semantics, reuse transparency,
// invalidation, speculation decisions, and stall coordination.
#include <gtest/gtest.h>

#include <thread>

#include "common/stopwatch.h"

#include "recycler/recycler.h"
#include "test_util.h"

namespace recycledb {
namespace {

class RecyclerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema s({{"k", TypeId::kInt32}, {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    for (int i = 0; i < 20000; ++i) {
      t->AppendRow({int32_t{i % 100}, static_cast<double>(i % 977)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  PlanPtr AggPlan(int64_t threshold, const std::string& alias = "sv") {
    return PlanNode::Aggregate(
        PlanNode::Select(
            PlanNode::Scan("t", {"k", "v"}),
            Expr::Gt(Expr::Column("k"), Expr::Literal(threshold))),
        {"k"}, {{AggFunc::kSum, Expr::Column("v"), alias}});
  }

  Catalog catalog_;
};

TEST_F(RecyclerTest, OffModeTouchesNothing) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kOff;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  rec.Execute(AggPlan(10));
  EXPECT_EQ(rec.graph().Stats().num_nodes, 0);
  EXPECT_EQ(rec.counters().reuses.load(), 0);
  EXPECT_EQ(rec.counters().materializations.load(), 0);
}

TEST_F(RecyclerTest, HistoryNeedsThreeOccurrencesToReuse) {
  // §V: "a result has to appear at least three times in a workload for
  // the [history] recycler to benefit from reusing it".
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  QueryTrace t1, t2, t3;
  rec.Execute(AggPlan(10), &t1);
  EXPECT_EQ(t1.num_materialized, 0);  // unseen: history cannot decide
  rec.Execute(AggPlan(10), &t2);
  EXPECT_GE(t2.num_materialized, 1);  // now known: store
  EXPECT_EQ(t2.num_reuses, 0);        // but nothing to reuse yet
  rec.Execute(AggPlan(10), &t3);
  EXPECT_GE(t3.num_reuses, 1);        // third time: reuse
}

TEST_F(RecyclerTest, SpeculationReusesFromSecondOccurrence) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  QueryTrace t1, t2;
  rec.Execute(AggPlan(10), &t1);
  EXPECT_GE(t1.num_materialized, 1);  // speculative store on first run
  rec.Execute(AggPlan(10), &t2);
  EXPECT_GE(t2.num_reuses, 1);
}

TEST_F(RecyclerTest, ReuseIsTransparentAcrossAliases) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  ExecResult r1 = rec.Execute(AggPlan(10, "alpha"));
  QueryTrace t2;
  ExecResult r2 = rec.Execute(AggPlan(10, "beta"), &t2);
  EXPECT_GE(t2.num_reuses, 1);  // matched through the name mapping
  EXPECT_EQ(r2.table->schema().field(1).name, "beta");  // caller's alias
  EXPECT_EQ(recycledb::testing::RowMultiset(*r1.table),
            recycledb::testing::RowMultiset(*r2.table));
}

TEST_F(RecyclerTest, ZeroCacheMeansNoMaterialization) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.cache_bytes = 0;
  Recycler rec(&catalog_, cfg);
  QueryTrace t1, t2;
  rec.Execute(AggPlan(10), &t1);
  rec.Execute(AggPlan(10), &t2);
  EXPECT_EQ(t1.num_materialized + t2.num_materialized, 0);
  EXPECT_EQ(t2.num_reuses, 0);
}

TEST_F(RecyclerTest, BufferCapAbortsSpeculationOnHugeResults) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.speculation_buffer_cap = 1024;  // tiny: everything is "too big"
  Recycler rec(&catalog_, cfg);
  QueryTrace t;
  // The aggregate result (100 groups) is small, but the final result
  // store sees the same; use a selection with a big result instead.
  PlanPtr big = PlanNode::Select(
      PlanNode::Scan("t", {"k", "v"}),
      Expr::Ge(Expr::Column("k"), Expr::Literal(int64_t{0})));
  ExecResult r = rec.Execute(big, &t);
  EXPECT_EQ(r.table->num_rows(), 20000);  // result intact
  EXPECT_EQ(t.num_materialized, 0);
  EXPECT_GE(t.num_spec_aborted, 1);
}

TEST_F(RecyclerTest, InvalidateTableEvictsDependents) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  rec.Execute(AggPlan(10));
  ASSERT_GE(rec.graph().Stats().num_cached, 1);
  rec.InvalidateTable("unrelated_table");
  EXPECT_GE(rec.graph().Stats().num_cached, 1);  // untouched
  rec.InvalidateTable("t");
  EXPECT_EQ(rec.graph().Stats().num_cached, 0);
  EXPECT_GE(rec.counters().invalidations.load(), 1);
  // And the next run recomputes correctly.
  QueryTrace t;
  ExecResult r = rec.Execute(AggPlan(10), &t);
  EXPECT_EQ(t.num_reuses, 0);
  EXPECT_GT(r.table->num_rows(), 0);
}

TEST_F(RecyclerTest, MatchCostRecordedAndSmall) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  QueryTrace t;
  rec.Execute(AggPlan(10), &t);
  EXPECT_GT(t.graph_nodes_at_match, 0);
  EXPECT_GE(t.match_ms, 0.0);
  EXPECT_LT(t.match_ms, 100.0);  // sanity: matching ≪ execution
}

TEST_F(RecyclerTest, PreparedStoresTargetExecutedPlanNodes) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  auto prepared = rec.Prepare(AggPlan(10));
  // Every store key must be a node of the prepared (rewritten) plan.
  std::set<const PlanNode*> nodes;
  std::vector<const PlanNode*> stack{prepared->plan().get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    nodes.insert(n);
    for (const auto& c : n->children()) stack.push_back(c.get());
  }
  for (const auto& [node, req] : prepared->stores()) {
    EXPECT_TRUE(nodes.count(node) > 0);
  }
  EXPECT_GE(prepared->stores().size(), 1u);
}

TEST_F(RecyclerTest, LimitAboveStoreDoesNotLeakInFlightState) {
  // Regression: a store under a Limit never sees its input exhausted; the
  // abort-on-close path must clear the node's in-flight state, or every
  // later query matching that node stalls until timeout.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.stall_timeout_ms = 60000;  // a leak would hang the test visibly
  Recycler rec(&catalog_, cfg);
  auto plan = [&] {
    return PlanNode::Limit(
        PlanNode::HashJoin(
            PlanNode::Scan("t", {"k", "v"}),
            PlanNode::Project(AggPlan(10),
                              {{Expr::Column("k"), "k2"},
                               {Expr::Column("sv"), "sv"}}),
            JoinKind::kInner, {"k"}, {"k2"}),
        5);
  };
  rec.Execute(plan());
  rec.Execute(plan());  // builds history for HIST store decisions
  Stopwatch sw;
  QueryTrace t3;
  rec.Execute(plan(), &t3);
  EXPECT_LT(sw.ElapsedMs(), 5000.0) << "stalled on a leaked in-flight node";
  EXPECT_LT(t3.stall_ms, 1000.0);
  // No node may be left in-flight after all queries completed.
  std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
  for (const auto& n : rec.graph().nodes()) {
    EXPECT_NE(n->mat_state.load(), MatState::kInFlight) << n->param_fp;
  }
}

TEST_F(RecyclerTest, ConcurrentIdenticalQueriesAgree) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  ExecResult reference = rec.Execute(AggPlan(10));
  auto expected = recycledb::testing::RowMultiset(*reference.table);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  // Not vector<bool>: adjacent elements share a byte, which is a real
  // data race under concurrent writers (and a TSan finding).
  std::vector<char> ok(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ExecResult r = rec.Execute(AggPlan(10));
      ok[i] = recycledb::testing::RowMultiset(*r.table) == expected;
    });
  }
  for (auto& th : threads) th.join();
  for (int i = 0; i < kThreads; ++i) EXPECT_TRUE(ok[i]) << "thread " << i;
}

TEST_F(RecyclerTest, ConcurrentDistinctQueriesKeepGraphConsistent) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  Recycler rec(&catalog_, cfg);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int round = 0; round < 5; ++round) {
        rec.Execute(AggPlan(i % 4));  // 4 distinct plans, contended
      }
    });
  }
  for (auto& th : threads) th.join();
  // OCC invariant: no duplicate (type, fingerprint, children) nodes.
  std::set<std::string> identities;
  std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
  for (const auto& n : rec.graph().nodes()) {
    std::string id = n->param_fp;
    for (const RGNode* c : n->children) id += "@" + std::to_string(c->id);
    EXPECT_TRUE(identities.insert(id).second) << "duplicate node: " << id;
  }
  // 4 selects + 4 aggs + 1 scan.
  EXPECT_EQ(rec.graph().Stats().num_nodes, 9);
}

}  // namespace
}  // namespace recycledb
