// Concurrent query streams at scale (Fig. 7 companion): aggregate
// throughput, latency percentiles, and reuse rates for 1/2/4/8/16
// concurrent streams through ONE shared recycler, in all four modes.
//
// Where bench_fig7_throughput reports the paper's per-stream evaluation
// time at a fixed execution bound (12), this bench scales the execution
// bound WITH the stream count: it measures how the recycler's sharded
// locking and cross-stream reuse turn extra concurrency into aggregate
// queries/sec. Expected shape: in OFF mode throughput is roughly flat
// (same total work, one engine); in SPEC/PA it rises with streams because
// parameter collisions across streams turn into cache hits.
//
// Env knobs (all optional):
//   RECYCLEDB_SF            TPC-H scale factor (default 0.02)
//   RECYCLEDB_STREAMS_MAX   cap on the stream counts swept (default 16)
//   RECYCLEDB_WORKLOAD      "tpch" (default) or "sky"
//   RECYCLEDB_SKY_QUERIES   queries per SkyServer stream (default 25)
//   RECYCLEDB_JSON_OUT      path for the machine-readable JSON results
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  const std::string workload = EnvStr("RECYCLEDB_WORKLOAD", "tpch");
  const int64_t max_streams = EnvInt("RECYCLEDB_STREAMS_MAX", 16);
  double sf = tpch::ScaleFromEnv(0.02);
  const int sky_queries =
      static_cast<int>(EnvInt("RECYCLEDB_SKY_QUERIES", 25));

  Catalog catalog;
  if (workload == "sky") {
    skyserver::Setup(skyserver::ObjectsFromEnv(), &catalog);
  } else {
    tpch::Generate(sf, &catalog);
  }

  PrintHeader(StrFormat(
      "Concurrent streams: aggregate throughput, %s workload%s",
      workload.c_str(),
      workload == "sky" ? "" : StrFormat(" (SF=%.3f)", sf).c_str()));
  std::printf("%5s %8s %9s %9s %9s %9s %8s %7s %7s %7s\n", "mode", "streams",
              "wall(ms)", "qps", "avg(ms)", "p95(ms)", "reuse%", "reuses",
              "mats", "stalls");

  const RecyclerMode modes[] = {RecyclerMode::kOff, RecyclerMode::kHistory,
                                RecyclerMode::kSpeculation,
                                RecyclerMode::kProactive};
  JsonResultSink json;
  double spec_qps_1 = 0, spec_qps_8 = 0;

  for (RecyclerMode mode : modes) {
    for (int streams : {1, 2, 4, 8, 16}) {
      if (streams > max_streams) continue;
      auto db = MakeDatabase(catalog, mode);
      workload::DriverOptions options;
      options.max_concurrent = streams;  // execution bound scales along
      workload::WorkloadDriver driver(&db->recycler(), options);
      workload::RunReport report = driver.Run(
          workload == "sky" ? skyserver::MakeStreams(streams, sky_queries)
                            : tpch::MakeStreams(streams, sf));

      double qps = report.QueriesPerSec();
      double avg_ms =
          report.TotalQueries() == 0
              ? 0.0
              : report.TotalQueryMs() /
                    static_cast<double>(report.TotalQueries());
      std::printf(
          "%5s %8d %9.1f %9.2f %9.2f %9.2f %7.1f%% %7lld %7lld %7lld\n",
          RecyclerModeName(mode), streams, report.wall_ms, qps, avg_ms,
          report.LatencyPercentileMs(95), 100.0 * report.ReuseRate(),
          static_cast<long long>(report.TotalReuses()),
          static_cast<long long>(report.TotalMaterializations()),
          static_cast<long long>(report.TotalStalls()));
      std::fflush(stdout);

      json.Add(JsonObject()
                   .Set("bench", "concurrent_streams")
                   .Set("workload", workload)
                   .Set("mode", RecyclerModeName(mode))
                   .Set("streams", streams)
                   .Set("queries", report.TotalQueries())
                   .Set("wall_ms", report.wall_ms)
                   .Set("qps", qps)
                   .Set("avg_ms", avg_ms)
                   .Set("p50_ms", report.LatencyPercentileMs(50))
                   .Set("p95_ms", report.LatencyPercentileMs(95))
                   .Set("p99_ms", report.LatencyPercentileMs(99))
                   .Set("reuse_rate", report.ReuseRate())
                   .Set("reuses", report.TotalReuses())
                   .Set("subsumption_reuses",
                        static_cast<int64_t>(
                            db->counters().subsumption_reuses.load()))
                   .Set("materializations", report.TotalMaterializations())
                   .Set("stalls", report.TotalStalls()));

      if (mode == RecyclerMode::kSpeculation) {
        if (streams == 1) spec_qps_1 = qps;
        if (streams == 8) spec_qps_8 = qps;
      }
    }
  }

  std::string json_path = json.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("\nJSON results written to %s\n", json_path.c_str());
  }

  if (spec_qps_1 > 0 && spec_qps_8 > 0) {
    std::printf(
        "\nSPEC aggregate throughput 1 -> 8 streams: %.2f -> %.2f qps "
        "(%.2fx) %s\n",
        spec_qps_1, spec_qps_8, spec_qps_8 / spec_qps_1,
        spec_qps_8 > spec_qps_1 ? "[OK: increasing]" : "[FAIL: not increasing]");
    return spec_qps_8 > spec_qps_1 ? 0 : 1;
  }
  return 0;
}
