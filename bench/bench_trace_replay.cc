// Trace-replay smoke bench: replays the checked-in SkyServer sweep trace
// (tests/golden/skyserver_sweep.trace) against a freshly built engine
// and gates that the recycler still reproduces the recording.
//
// Two phases:
//   single   faithful single-stream replay — digests, reuse modes and
//            post-rewrite plan shapes must match the recording exactly.
//   conc4    4 concurrent copies of the statement sequence through the
//            workload driver — digests stay strict; the aggregate hit
//            rate may not fall more than RECYCLEDB_HIT_TOL (default 2)
//            percentage points below the recorded rate.
//
// Gates (exit 1 on failure): both phases' replay reports come back ok.
// JSON (RECYCLEDB_JSON_OUT): one row per phase with statement counts,
// mismatch counters and recorded/replayed hit rates.
//
// Env: RECYCLEDB_TRACE overrides the trace path (a trace captured from a
// bug report replays the same way — see docs/testing.md).
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

/// Replays `t` under `options`, prints/records one summary row and
/// returns whether the report gated ok.
bool RunPhase(const char* phase, Database* db, const trace::Trace& t,
              const trace::ReplayOptions& options, JsonResultSink* sink) {
  trace::TraceReplayer replayer(db, options);
  trace::ReplayReport report;
  Stopwatch sw;
  Status st = replayer.Replay(t, &report);
  const double ms = sw.ElapsedMs();
  if (!st.ok()) {
    std::fprintf(stderr, "%s: replay error: %s\n", phase,
                 st.ToString().c_str());
    return false;
  }
  std::printf("%-8s %5lld stmts %7.1f ms  hit%% rec=%5.1f rep=%5.1f"
              "  mism dig=%lld mode=%lld plan=%lld  %s\n",
              phase, static_cast<long long>(report.statements), ms,
              report.recorded_hit_rate, report.replayed_hit_rate,
              static_cast<long long>(report.digest_mismatches),
              static_cast<long long>(report.mode_mismatches),
              static_cast<long long>(report.plan_mismatches),
              report.ok() ? "ok" : "DIVERGED");
  if (!report.ok()) std::fprintf(stderr, "%s", report.ToString().c_str());
  sink->Add(JsonObject()
                .Set("bench", "trace_replay")
                .Set("phase", phase)
                .Set("statements", report.statements)
                .Set("errors", report.errors)
                .Set("digest_mismatches", report.digest_mismatches)
                .Set("mode_mismatches", report.mode_mismatches)
                .Set("plan_mismatches", report.plan_mismatches)
                .Set("recorded_hit_rate", report.recorded_hit_rate)
                .Set("replayed_hit_rate", report.replayed_hit_rate)
                .Set("ms", ms)
                .Set("ok", static_cast<int64_t>(report.ok() ? 1 : 0)));
  return report.ok();
}

/// Fresh engine in the deterministic configuration the trace was
/// recorded under, with the recorded photoprimary table rebuilt from the
/// trace header's objects tag.
std::unique_ptr<Database> RebuildEngine(const trace::Trace& t) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = -1;
  options.recycler.use_cost_model = true;
  options.recycler.capture_plan_explain = true;
  auto db = Database::OpenOrDie(options);
  auto it = t.header.tags.find("objects");
  const int64_t objects =
      it != t.header.tags.end() ? std::atoll(it->second.c_str()) : 8000;
  // Default data seed: the header's seed drove the sweep's query
  // generation, not the catalog build.
  skyserver::Setup(objects, &db->catalog());
  return db;
}

}  // namespace

int main() {
  const std::string path = EnvStr(
      "RECYCLEDB_TRACE",
      std::string(RDB_SOURCE_DIR) + "/tests/golden/skyserver_sweep.trace");
  const double tolerance_pts =
      static_cast<double>(EnvInt("RECYCLEDB_HIT_TOL", 2));

  trace::Trace t;
  Status st = trace::ReadTraceFile(path, &t);
  RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
  PrintHeader(StrFormat(
      "trace replay: %s (%lld statements, recorded hit rate %.1f%%)",
      path.c_str(), static_cast<long long>(t.NumStatements()),
      t.HitRate() * 100.0));

  JsonResultSink sink;
  bool ok = true;
  {
    auto db = RebuildEngine(t);
    trace::ReplayOptions options;  // strict single-stream defaults
    ok = RunPhase("single", db.get(), t, options, &sink) && ok;
  }
  {
    auto db = RebuildEngine(t);
    trace::ReplayOptions options;
    options.concurrency = 4;
    options.strict_modes = false;
    options.check_plan_shape = false;
    options.hit_rate_tolerance_pts = tolerance_pts;
    ok = RunPhase("conc4", db.get(), t, options, &sink) && ok;
  }

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) std::printf("json: %s\n", json_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "FAIL: replay diverged from the recorded trace\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
