// Single-core raw-speed pack benchmark.
//
// Section A (zone-map pruning): a narrow-window sweep over a large
// sorted table, once with zone-map pruning and once without, with the
// recycler off so only the scan path differs. The pruned sweep reads a
// handful of 1024-row blocks per query instead of the whole table and
// must be at least 2x faster end to end.
//
// Section B (compressed cold tier): two engines with identical,
// deliberately small cold-tier byte caps absorb the same stream of
// distinct compressible results and are then flushed to disk. Format v2
// column codecs shrink each spill file, so the compressing tier must
// retain at least 1.5x as many cold entries under the same cap.
//
// JSON (RECYCLEDB_JSON_OUT): one row per configuration with latency /
// block / cold-entry counters. Exits nonzero when either gate fails
// (CI bench-smoke runs this).
#include <filesystem>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

std::string MakeTempDir(const char* tag) {
  std::string tmpl = EnvStr("TMPDIR", "/tmp") + "/rdb-bench-" + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = mkdtemp(buf.data());
  RDB_CHECK_MSG(d != nullptr, "cannot create bench spill dir");
  return d;
}

// --- Section A ------------------------------------------------------------

/// Sorted observation table: `ra` ascending (the sweep column) plus a
/// double payload, built column-wise in one batch.
TablePtr MakePointsTable(int64_t rows) {
  Schema s({{"ra", TypeId::kInt32}, {"flux", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  Batch b;
  b.columns.push_back(MakeColumn(TypeId::kInt32));
  b.columns.push_back(MakeColumn(TypeId::kDouble));
  auto& ra = b.columns[0]->Data<int32_t>();
  auto& flux = b.columns[1]->Data<double>();
  ra.reserve(rows);
  flux.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    ra.push_back(static_cast<int32_t>(i));
    flux.push_back(static_cast<double>((i * 7919) % 100003) * 0.01);
  }
  b.num_rows = rows;
  t->AppendBatch(b);
  return t;
}

PlanPtr WindowQuery(int32_t lo, int32_t hi) {
  return PlanNode::Select(
      PlanNode::Scan("pts", {"ra", "flux"}),
      Expr::And(Expr::Ge(Expr::Column("ra"), Expr::Literal(lo)),
                Expr::Lt(Expr::Column("ra"), Expr::Literal(hi))));
}

struct SweepStats {
  double total_ms = 0;
  int64_t rows_out = 0;
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
};

SweepStats RunWindowSweep(Database* db, int64_t rows, int num_queries,
                          int32_t window) {
  // One warmup query outside the timed region.
  RDB_CHECK(db->Execute(WindowQuery(0, window)).ok());
  SweepStats out;
  const int64_t stride = rows / num_queries;
  Stopwatch sw;
  for (int q = 0; q < num_queries; ++q) {
    const int32_t lo = static_cast<int32_t>(q * stride);
    Result r = db->Execute(WindowQuery(lo, lo + window));
    RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    out.rows_out += r.table()->num_rows();
    out.blocks_scanned += r.trace().blocks_scanned;
    out.blocks_pruned += r.trace().blocks_pruned;
  }
  out.total_ms = sw.ElapsedMs();
  return out;
}

// --- Section B ------------------------------------------------------------

/// Base table whose window-select results compress well: a dense int64
/// key (frame-of-reference), a low-cardinality tag (dictionary) and a
/// stepped double (run-length).
TablePtr MakeLogTable(int64_t rows) {
  Schema s({{"k", TypeId::kInt64},
            {"tag", TypeId::kString},
            {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  Batch b;
  b.columns.push_back(MakeColumn(TypeId::kInt64));
  b.columns.push_back(MakeColumn(TypeId::kString));
  b.columns.push_back(MakeColumn(TypeId::kDouble));
  auto& k = b.columns[0]->Data<int64_t>();
  auto& tag = b.columns[1]->Data<std::string>();
  auto& v = b.columns[2]->Data<double>();
  static const char* kTags[] = {"get", "put", "del", "scan"};
  for (int64_t i = 0; i < rows; ++i) {
    k.push_back(i);
    tag.push_back(kTags[i % 4]);
    v.push_back(static_cast<double>(i / 64) * 1.5);
  }
  b.num_rows = rows;
  t->AppendBatch(b);
  return t;
}

PlanPtr LogWindowQuery(int64_t lo, int64_t hi) {
  return PlanNode::Select(
      PlanNode::Scan("log", {"k", "tag", "v"}),
      Expr::And(Expr::Ge(Expr::Column("k"), Expr::Literal(lo)),
                Expr::Lt(Expr::Column("k"), Expr::Literal(hi))));
}

struct ColdStats {
  int64_t num_cold = 0;
  int64_t spills = 0;
  int64_t stored_bytes = 0;
  int64_t raw_bytes = 0;
};

/// Runs `num_windows` distinct compressible window queries, flushes the
/// hot cache to disk, and reports how much of the workload's coverage
/// the cold tier retained.
ColdStats FillColdTier(const Catalog& catalog, const std::string& spill_dir,
                       int64_t capacity_bytes, bool compress,
                       int num_windows, int64_t window_rows) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.spill_dir = spill_dir;
  cfg.cold_tier_capacity_bytes = capacity_bytes;
  cfg.compress_spill = compress;
  auto db = MakeDatabase(catalog, cfg);
  for (int w = 0; w < num_windows; ++w) {
    const int64_t lo = w * 2 * window_rows;  // disjoint: no subsumption
    Result r = db->Execute(LogWindowQuery(lo, lo + window_rows));
    RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
  }
  db->FlushCache();
  ColdStats out;
  out.num_cold = db->graph_stats().num_cold;
  out.spills = db->counters().cold_spills.load();
  out.stored_bytes = db->counters().cold_spill_stored_bytes.load();
  out.raw_bytes = db->counters().cold_spill_raw_bytes.load();
  return out;
}

}  // namespace

int main() {
  const int64_t rows = EnvInt("RECYCLEDB_SPEED_ROWS", 2000000);
  const int num_queries = static_cast<int>(EnvInt("RECYCLEDB_SPEED_QUERIES", 48));
  const int32_t window = 4096;

  JsonResultSink sink;

  // --- Section A: pruned vs. unpruned window sweep ---------------------
  PrintHeader(StrFormat(
      "Speed pack A: zone-map pruning (%lld rows, %d windows of %d)",
      static_cast<long long>(rows), num_queries, window));

  Catalog points;
  RDB_CHECK(points.RegisterTable("pts", MakePointsTable(rows)).ok());

  SweepStats pruned, unpruned;
  for (bool enable : {false, true}) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kOff;  // isolate the scan path
    cfg.enable_zone_map_pruning = enable;
    auto db = MakeDatabase(points, cfg);
    SweepStats s = RunWindowSweep(db.get(), rows, num_queries, window);
    (enable ? pruned : unpruned) = s;
    std::printf("%-10s  total %8.1f ms   rows %10lld   blocks %8lld scanned"
                " / %8lld pruned\n",
                enable ? "pruned" : "unpruned", s.total_ms,
                static_cast<long long>(s.rows_out),
                static_cast<long long>(s.blocks_scanned),
                static_cast<long long>(s.blocks_pruned));
    std::fflush(stdout);
    JsonObject row;
    row.Set("bench", "speed_pack")
        .Set("section", "pruning")
        .Set("config", enable ? "pruned" : "unpruned")
        .Set("rows", rows)
        .Set("queries", static_cast<int64_t>(num_queries))
        .Set("total_ms", s.total_ms)
        .Set("rows_out", s.rows_out)
        .Set("blocks_scanned", s.blocks_scanned)
        .Set("blocks_pruned", s.blocks_pruned);
    sink.Add(row);
  }
  const double speedup =
      pruned.total_ms > 0 ? unpruned.total_ms / pruned.total_ms : 0;
  std::printf("pruning speedup: %.2fx\n", speedup);

  // --- Section B: cold-tier density with compressed spills -------------
  const int cold_windows = 48;
  const int64_t window_rows = 8192;
  const int64_t capacity = 2ll << 20;
  PrintHeader(StrFormat(
      "Speed pack B: compressed cold tier (%d windows of %lld rows, "
      "%lld-byte cap)",
      cold_windows, static_cast<long long>(window_rows),
      static_cast<long long>(capacity)));

  Catalog logs;
  RDB_CHECK(
      logs.RegisterTable("log", MakeLogTable(2 * cold_windows * window_rows))
          .ok());

  ColdStats with, without;
  for (bool compress : {false, true}) {
    const std::string dir = MakeTempDir(compress ? "comp" : "raw");
    ColdStats s = FillColdTier(logs, dir, capacity, compress, cold_windows,
                               window_rows);
    (compress ? with : without) = s;
    std::printf("%-12s  cold entries %4lld   spills %4lld   stored %9lld B"
                "   raw %9lld B   ratio %.2fx\n",
                compress ? "compressed" : "uncompressed",
                static_cast<long long>(s.num_cold),
                static_cast<long long>(s.spills),
                static_cast<long long>(s.stored_bytes),
                static_cast<long long>(s.raw_bytes),
                s.stored_bytes > 0
                    ? static_cast<double>(s.raw_bytes) / s.stored_bytes
                    : 0.0);
    std::fflush(stdout);
    JsonObject row;
    row.Set("bench", "speed_pack")
        .Set("section", "cold_tier")
        .Set("config", compress ? "compressed" : "uncompressed")
        .Set("capacity_bytes", capacity)
        .Set("cold_entries", s.num_cold)
        .Set("cold_spills", s.spills)
        .Set("stored_bytes", s.stored_bytes)
        .Set("raw_bytes", s.raw_bytes);
    sink.Add(row);
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  const double density = without.num_cold > 0
                             ? static_cast<double>(with.num_cold) /
                                   static_cast<double>(without.num_cold)
                             : 0.0;
  std::printf("cold-entry density: %.2fx\n", density);

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("\nJSON results written to %s\n", json_path.c_str());
  }

  std::printf(
      "\nExpected: zone maps skip every block outside each query window "
      "(>= 2x sweep speedup), and v2 column codecs let the same cold-tier "
      "byte cap retain >= 1.5x as many spilled results.\n");

  // Gate 1: pruning makes the sweep at least 2x faster, and the pruned
  // engine actually skipped blocks while producing the same rows.
  if (pruned.rows_out != unpruned.rows_out) {
    std::fprintf(stderr, "FAIL: pruned sweep returned %lld rows, unpruned %lld\n",
                 static_cast<long long>(pruned.rows_out),
                 static_cast<long long>(unpruned.rows_out));
    return 1;
  }
  if (pruned.blocks_pruned <= 0) {
    std::fprintf(stderr, "FAIL: pruned sweep skipped no blocks\n");
    return 1;
  }
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: pruning speedup %.2fx below 2x gate\n",
                 speedup);
    return 1;
  }
  // Gate 2: at the same byte cap the compressing tier holds >= 1.5x the
  // cold entries.
  if (without.num_cold <= 0 || with.num_cold <= 0) {
    std::fprintf(stderr, "FAIL: cold tier retained no entries (with=%lld "
                 "without=%lld)\n",
                 static_cast<long long>(with.num_cold),
                 static_cast<long long>(without.num_cold));
    return 1;
  }
  if (density < 1.5) {
    std::fprintf(stderr, "FAIL: cold-entry density %.2fx below 1.5x gate\n",
                 density);
    return 1;
  }
  return 0;
}
