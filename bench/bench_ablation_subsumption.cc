// Ablation D: subsumption off / single-superset ("subsume") / partial-range
// stitching ("partial") on an overlap-heavy workload: top-N paging,
// conjunct-refining selections, roll-up aggregations, and an
// overlapping-range sweep — the sweep is where single-superset subsumption
// still misses (no cached slice covers the whole window) and partial
// stitching converts near-miss overlap into reuse.
//
// JSON (RECYCLEDB_JSON_OUT): one row per mode with reuse counters and
// hit-rate. The binary exits nonzero unless the partial mode's reuse
// hit-rate is STRICTLY higher than the subsume mode's — a regression gate
// for the partial-reuse engine.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

PlanPtr PageQuery(int64_t n) {
  // Paging through a ranked list (the paper's top-N motivation).
  return PlanNode::TopN(PlanNode::Scan("f", {"a", "b", "v"}),
                        {{"v", false}, {"a", true}}, n);
}

PlanPtr RefineQuery(int64_t extra) {
  // Drill-down: a shared base conjunct refined per query.
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "b", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(9000.0)),
                Expr::Eq(Expr::Column("a"), Expr::Literal(extra))));
}

PlanPtr RollupQuery(bool coarse) {
  // Roll-up from (a, b) to (a) — classic OLAP cube navigation.
  std::vector<std::string> groups = coarse
                                        ? std::vector<std::string>{"a"}
                                        : std::vector<std::string>{"a", "b"};
  return PlanNode::Aggregate(
      PlanNode::Scan("f", {"a", "b", "v"}), groups,
      {{AggFunc::kSum, Expr::Column("v"), "sv"},
       {AggFunc::kCount, Expr::Column("v"), "cv"}});
}

PlanPtr RangeQuery(double lo, double hi) {
  // Sliding-window range selection (the partial-reuse beneficiary:
  // consecutive windows overlap but no single cached slice covers them).
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "b", "v"}),
      Expr::And(Expr::Ge(Expr::Column("v"), Expr::Literal(lo)),
                Expr::Lt(Expr::Column("v"), Expr::Literal(hi))));
}

struct ModeResult {
  double total_ms = 0;
  int64_t queries = 0;
  int64_t reuses = 0;
  int64_t subsumption_reuses = 0;
  int64_t partial_reuses = 0;
  double HitRate() const {
    return queries == 0 ? 0 : static_cast<double>(reuses) / queries;
  }
};

}  // namespace

int main() {
  Catalog catalog;
  Schema s({{"a", TypeId::kInt32}, {"b", TypeId::kInt32},
            {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  Rng rng(4242);
  for (int i = 0; i < 500000; ++i) {
    t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 15)),
                  static_cast<int32_t>(rng.Uniform(0, 200)),
                  static_cast<double>(rng.Uniform(0, 10000))});
  }
  if (!catalog.RegisterTable("f", t).ok()) return 1;

  PrintHeader("Ablation D: subsumption off/subsume/partial, overlap-heavy "
              "workload");
  std::printf("%8s %12s %10s %10s %10s %10s\n", "mode", "total(ms)", "reuses",
              "subsumed", "stitched", "hit-rate");

  struct Mode {
    const char* name;
    bool subsumption;
    bool partial;
  };
  const Mode modes[3] = {{"off", false, false},
                         {"subsume", true, false},
                         {"partial", true, true}};
  ModeResult results[3];
  JsonResultSink sink;

  for (int mi = 0; mi < 3; ++mi) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.enable_subsumption = modes[mi].subsumption;
    cfg.enable_partial_reuse = modes[mi].partial;
    auto db = MakeDatabase(catalog, cfg);
    Rng wl(7);
    Stopwatch sw;
    // Seed: one big top-N, the broad selection, the fine cube.
    db->Execute(PageQuery(1000));
    db->Execute(PlanNode::Select(
        PlanNode::Scan("f", {"a", "b", "v"}),
        Expr::Gt(Expr::Column("v"), Expr::Literal(9000.0))));
    db->Execute(RollupQuery(false));
    // 60 queries derivable from those three by single-superset rules.
    for (int i = 0; i < 20; ++i) db->Execute(PageQuery(wl.Uniform(10, 500)));
    for (int i = 0; i < 20; ++i) db->Execute(RefineQuery(wl.Uniform(0, 14)));
    for (int i = 0; i < 20; ++i) db->Execute(RollupQuery(true));
    // Overlapping-range sweep: 30 sliding windows of width 1500 stepping
    // by 250 — every window overlaps its predecessors, none is contained
    // in a single earlier one, so only stitching can serve them.
    for (int i = 0; i < 30; ++i) {
      double lo = 250.0 * i;
      db->Execute(RangeQuery(lo, lo + 1500.0));
    }

    ModeResult& r = results[mi];
    r.total_ms = sw.ElapsedMs();
    r.queries = db->counters().queries.load();
    r.reuses = db->counters().reuses.load();
    r.subsumption_reuses = db->counters().subsumption_reuses.load();
    r.partial_reuses = db->counters().partial_reuses.load();
    std::printf("%8s %12.1f %10lld %10lld %10lld %9.1f%%\n", modes[mi].name,
                r.total_ms, (long long)r.reuses,
                (long long)r.subsumption_reuses, (long long)r.partial_reuses,
                100 * r.HitRate());
    std::fflush(stdout);

    JsonObject row;
    row.Set("bench", "ablation_subsumption")
        .Set("mode", modes[mi].name)
        .Set("total_ms", r.total_ms)
        .Set("queries", r.queries)
        .Set("reuses", r.reuses)
        .Set("subsumption_reuses", r.subsumption_reuses)
        .Set("partial_reuses", r.partial_reuses)
        .Set("hit_rate", r.HitRate());
    sink.Add(row);
  }

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("\nJSON results written to %s\n", json_path.c_str());
  }

  std::printf("\nExpected: subsumption converts the derivable queries into "
              "reuses; partial stitching additionally serves the "
              "overlapping-range sweep.\n");

  // Regression gate: stitching must strictly raise the reuse hit-rate
  // over single-superset subsumption on this workload.
  if (results[2].HitRate() <= results[1].HitRate()) {
    std::fprintf(stderr,
                 "FAIL: partial hit-rate %.3f not above subsume %.3f\n",
                 results[2].HitRate(), results[1].HitRate());
    return 1;
  }
  if (results[2].partial_reuses <= 0) {
    std::fprintf(stderr, "FAIL: no partial reuses recorded\n");
    return 1;
  }
  return 0;
}
