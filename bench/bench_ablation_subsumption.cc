// Ablation D: subsumption on/off (§IV-A) on an overlap-heavy workload:
// top-N paging, conjunct-refining selections, and roll-up aggregations —
// none of which exact matching alone can serve.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

PlanPtr PageQuery(int64_t n) {
  // Paging through a ranked list (the paper's top-N motivation).
  return PlanNode::TopN(PlanNode::Scan("f", {"a", "b", "v"}),
                        {{"v", false}, {"a", true}}, n);
}

PlanPtr RefineQuery(int64_t extra) {
  // Drill-down: a shared base conjunct refined per query.
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "b", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(9000.0)),
                Expr::Eq(Expr::Column("a"), Expr::Literal(extra))));
}

PlanPtr RollupQuery(bool coarse) {
  // Roll-up from (a, b) to (a) — classic OLAP cube navigation.
  std::vector<std::string> groups = coarse
                                        ? std::vector<std::string>{"a"}
                                        : std::vector<std::string>{"a", "b"};
  return PlanNode::Aggregate(
      PlanNode::Scan("f", {"a", "b", "v"}), groups,
      {{AggFunc::kSum, Expr::Column("v"), "sv"},
       {AggFunc::kCount, Expr::Column("v"), "cv"}});
}

}  // namespace

int main() {
  Catalog catalog;
  Schema s({{"a", TypeId::kInt32}, {"b", TypeId::kInt32},
            {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  Rng rng(4242);
  for (int i = 0; i < 500000; ++i) {
    t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 15)),
                  static_cast<int32_t>(rng.Uniform(0, 200)),
                  static_cast<double>(rng.Uniform(0, 10000))});
  }
  if (!catalog.RegisterTable("f", t).ok()) return 1;

  PrintHeader("Ablation D: subsumption on/off, overlap-heavy workload");
  std::printf("%6s %12s %10s %16s\n", "subsm", "total(ms)", "reuses",
              "via-subsumption");

  for (bool enabled : {false, true}) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.enable_subsumption = enabled;
    auto db = MakeDatabase(catalog, cfg);
    Rng wl(7);
    Stopwatch sw;
    // Seed: one big top-N, the broad selection, the fine cube.
    db->Execute(PageQuery(1000));
    db->Execute(PlanNode::Select(
        PlanNode::Scan("f", {"a", "b", "v"}),
        Expr::Gt(Expr::Column("v"), Expr::Literal(9000.0))));
    db->Execute(RollupQuery(false));
    // Then 60 queries all derivable from those three.
    for (int i = 0; i < 20; ++i) db->Execute(PageQuery(wl.Uniform(10, 500)));
    for (int i = 0; i < 20; ++i) db->Execute(RefineQuery(wl.Uniform(0, 14)));
    for (int i = 0; i < 20; ++i) db->Execute(RollupQuery(true));
    std::printf("%6s %12.1f %10lld %16lld\n", enabled ? "on" : "off",
                sw.ElapsedMs(), (long long)db->counters().reuses.load(),
                (long long)db->counters().subsumption_reuses.load());
    std::fflush(stdout);
  }
  std::printf("\nExpected: subsumption converts the derivable queries into "
              "reuses and cuts total time.\n");
  return 0;
}
