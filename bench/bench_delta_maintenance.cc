// Delta maintenance bench: the append-only sliding-window rollup
// workload that pure invalidation turns into the recycler's worst case.
// A fixed rollup statement set (grouped SUM/COUNT/AVG/MIN/MAX plus
// overlapping value-threshold windows) is re-executed after every batch
// of appended event rows, on two arms: delta maintenance ON (append-
// stale entries are stitched/merged with the delta window and re-admitted
// at the new high-water mark) and OFF (every append invalidates every
// dependent entry). Every result on both arms is checked bit-identical
// against a recycler-bypass baseline.
//
// JSON (RECYCLEDB_JSON_OUT): one row per (arm, statement) plus one
// summary row per arm. Gates (exit 1 on failure):
//   - ON  arm hit-rate >= 0.80 (delta hits count as hits)
//   - OFF arm hit-rate <= 0.10 (pure invalidation: repeats never hit)
//   - ON  arm served at least one aggregate merge and one delta hit
//   - bit-identical rows vs the bypass baseline everywhere
#include <algorithm>
#include <string>
#include <variant>
#include <vector>

#include "bench_util.h"
#include "workload/rollup.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

/// Exact row rendering (doubles at full precision: the gate asserts
/// bit-identity; the rollup generator's integer-valued doubles keep
/// partial-sum merging exact).
std::vector<std::string> RowStrings(const Table& t) {
  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(t.num_rows()));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (int c = 0; c < t.num_columns(); ++c) {
      const Datum& d = t.Get(r, c);
      if (std::holds_alternative<double>(d)) {
        key += StrFormat("%.17g", std::get<double>(d));
      } else {
        key += DatumToString(d);
      }
      key += "|";
    }
    rows.push_back(std::move(key));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

struct ArmResult {
  int64_t eligible = 0;  // scored executions (seed round excluded)
  int64_t hits = 0;
  int64_t mismatches = 0;
  int64_t delta_hits = 0;
  int64_t agg_merges = 0;
  double HitRate() const {
    return eligible == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(eligible);
  }
};

}  // namespace

int main() {
  rollup::RollupOptions ropt;
  ropt.initial_rows = EnvInt("RECYCLEDB_DELTA_ROWS", 30000);
  const int64_t rounds = EnvInt("RECYCLEDB_DELTA_ROUNDS", 8);
  const int64_t batch_rows = EnvInt("RECYCLEDB_DELTA_BATCH", 250);
  PrintHeader(StrFormat(
      "Delta maintenance: append-only rollup over %lld-row events, "
      "%lld append rounds of %lld rows, delta on vs off",
      static_cast<long long>(ropt.initial_rows),
      static_cast<long long>(rounds), static_cast<long long>(batch_rows)));

  const std::vector<std::string> queries = rollup::RollupSql(ropt);
  JsonResultSink sink;
  ArmResult arms[2];

  std::printf("%-4s %-9s %8s %6s %6s %8s %8s\n", "arm", "stmt", "rounds",
              "hits", "rate", "delta", "aggmrg");
  for (int arm = 0; arm < 2; ++arm) {
    const bool delta_on = (arm == 0);
    DatabaseOptions options;
    options.recycler.mode = RecyclerMode::kSpeculation;
    options.recycler.enable_delta_maintenance = delta_on;
    auto db = Database::OpenOrDie(options);
    RDB_CHECK(rollup::Setup(db.get(), ropt).ok());
    SessionOptions bypass;
    bypass.bypass_recycler = true;
    auto baseline_session = db->Connect(bypass);

    // Seed round: every statement materializes; it cannot hit.
    for (const std::string& q : queries) {
      Result r = db->Sql(q);
      RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    }

    std::vector<int64_t> hits(queries.size(), 0);
    std::vector<int64_t> delta_served(queries.size(), 0);
    std::vector<int64_t> merges(queries.size(), 0);
    int64_t rows = ropt.initial_rows;
    Stopwatch sw;
    for (int64_t round = 0; round < rounds; ++round) {
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        // Streaming cadence: a batch lands between any two statement
        // executions, so every repeat finds its cached entry append-stale
        // (and, on the off arm, finds every sibling entry invalidated —
        // the hit-rate gap below is delta maintenance alone, not
        // within-round range stitching between the overlapping windows).
        TablePtr batch = rollup::MakeBatch(batch_rows, rows, ropt);
        RDB_CHECK(db->AppendTable("events", *batch).ok());
        rows += batch_rows;
        Result r = db->Sql(queries[qi]);
        RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
        Result truth = baseline_session->Sql(queries[qi]);
        RDB_CHECK_MSG(truth.ok(), truth.status().ToString().c_str());
        if (RowStrings(*r.table()) != RowStrings(*truth.table())) {
          std::fprintf(stderr, "result mismatch: arm=%s stmt=%zu round=%lld\n",
                       delta_on ? "on" : "off", qi,
                       static_cast<long long>(round));
          ++arms[arm].mismatches;
        }
        ++arms[arm].eligible;
        if (r.recycled()) {
          ++arms[arm].hits;
          ++hits[qi];
        }
        arms[arm].delta_hits += r.delta_reuses();
        arms[arm].agg_merges += r.agg_merges();
        delta_served[qi] += r.delta_reuses();
        merges[qi] += r.agg_merges();
      }
    }
    double arm_ms = sw.ElapsedMs();

    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::printf("%-4s stmt%-5zu %8lld %6lld %5.0f%% %8lld %8lld\n",
                  delta_on ? "on" : "off", qi,
                  static_cast<long long>(rounds),
                  static_cast<long long>(hits[qi]),
                  rounds == 0 ? 0.0 : 100.0 * hits[qi] / rounds,
                  static_cast<long long>(delta_served[qi]),
                  static_cast<long long>(merges[qi]));
      JsonObject row;
      row.Set("bench", "delta_maintenance")
          .Set("arm", delta_on ? "on" : "off")
          .Set("stmt", static_cast<int64_t>(qi))
          .Set("rounds", rounds)
          .Set("hits", hits[qi])
          .Set("delta_hits", delta_served[qi])
          .Set("agg_merges", merges[qi]);
      sink.Add(row);
    }
    JsonObject summary;
    summary.Set("bench", "delta_maintenance")
        .Set("arm", delta_on ? "on" : "off")
        .Set("stmt", "TOTAL")
        .Set("eligible", arms[arm].eligible)
        .Set("hits", arms[arm].hits)
        .Set("hit_rate", arms[arm].HitRate())
        .Set("delta_hits", arms[arm].delta_hits)
        .Set("agg_merges", arms[arm].agg_merges)
        .Set("mismatches", arms[arm].mismatches)
        .Set("scored_ms", arm_ms);
    sink.Add(summary);
  }

  std::printf(
      "\ndelta on: %.1f%% hit-rate (%lld delta hits, %lld agg merges); "
      "off: %.1f%%\n",
      100.0 * arms[0].HitRate(), static_cast<long long>(arms[0].delta_hits),
      static_cast<long long>(arms[0].agg_merges), 100.0 * arms[1].HitRate());

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("JSON results written to %s\n", json_path.c_str());
  }

  // Regression gates.
  int rc = 0;
  if (arms[0].HitRate() < 0.80) {
    std::fprintf(stderr, "FAIL: delta-on hit-rate %.3f below 0.80\n",
                 arms[0].HitRate());
    rc = 1;
  }
  if (arms[1].HitRate() > 0.10) {
    std::fprintf(stderr, "FAIL: delta-off hit-rate %.3f above 0.10\n",
                 arms[1].HitRate());
    rc = 1;
  }
  if (arms[0].delta_hits == 0 || arms[0].agg_merges == 0) {
    std::fprintf(stderr,
                 "FAIL: delta-on arm served no delta hits / agg merges\n");
    rc = 1;
  }
  if (arms[0].mismatches + arms[1].mismatches > 0) {
    std::fprintf(stderr, "FAIL: %lld result mismatches vs bypass baseline\n",
                 static_cast<long long>(arms[0].mismatches +
                                        arms[1].mismatches));
    rc = 1;
  }
  return rc;
}
