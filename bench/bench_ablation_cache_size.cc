// Ablation B: recycler cache budget sweep on the TPC-H throughput run.
// The paper's Fig. 6 contrasts a bounded vs unlimited cache; this sweep
// maps the full curve for the pipelined recycler.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.01);
  int streams = static_cast<int>(EnvInt("RECYCLEDB_STREAMS", 16));
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Ablation B: cache budget sweep, " + std::to_string(streams) +
              " TPC-H streams, SPEC mode");
  std::printf("%12s %14s %10s %10s %12s\n", "cache", "avg-stream(ms)",
              "reuses", "evictions", "cached(KB)");

  const int64_t budgets[] = {64 << 10, 1 << 20, 4 << 20, 16 << 20,
                             64 << 20, -1};
  for (int64_t budget : budgets) {
    auto db = MakeDatabase(catalog, RecyclerMode::kSpeculation, budget);
    auto specs = tpch::MakeStreams(streams, sf);
    workload::RunReport report =
        workload::RunStreams(db.get(), std::move(specs), 12);
    std::string name = budget < 0 ? "unlimited"
                                  : std::to_string(budget >> 10) + "KB";
    std::printf("%12s %14.1f %10lld %10lld %12lld\n", name.c_str(),
                report.AvgStreamMs(), (long long)db->counters().reuses.load(),
                (long long)db->counters().evictions.load(),
                (long long)(db->graph_stats().cached_bytes >> 10));
    std::fflush(stdout);
  }
  std::printf("\nExpected: throughput improves with budget and saturates "
              "once the hot result set fits.\n");
  return 0;
}
