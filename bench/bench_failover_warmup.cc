// Failover warm-up bench: a primary replays the checked-in SkyServer
// sweep trace with a shared spill directory and checkpoints its cold
// tier; a standby that tailed the primary's manifest is promoted and
// replays the first N statements of the same trace. The gate is the
// warm-standby claim from the fleet tier: the standby's hit rate over
// those first N statements must be within RECYCLEDB_FAILOVER_TOL
// (default 10) percentage points of the primary's steady-state rate.
//
// Two phases:
//   primary  full-trace replay on the owning instance, then FlushCache
//            so every retained result is durable in the shared tier.
//   standby  promoted tailer, first-N replay served from the primary's
//            spills (adoption; nothing was ever cached hot here).
//
// Gates (exit 1 on failure): both replays reproduce the recorded
// digests, and the standby's warm-up hit rate clears the tolerance.
// JSON (RECYCLEDB_JSON_OUT): one row per phase plus a gate row.
//
// Env: RECYCLEDB_TRACE overrides the trace path, RECYCLEDB_WARMUP_N the
// warm-up window (default 50 statements).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

std::string MakeSpillDir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl =
      std::string(base != nullptr ? base : "/tmp") + "/rdb-failover-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  RDB_CHECK_MSG(mkdtemp(buf.data()) != nullptr, "mkdtemp failed");
  return std::string(buf.data());
}

/// Fleet-configured engine over `spill_dir` with the recorded
/// photoprimary table rebuilt from the trace header's objects tag.
std::unique_ptr<Database> OpenInstance(const trace::Trace& t,
                                       const std::string& spill_dir,
                                       const std::string& instance) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = -1;
  options.recycler.use_cost_model = true;
  options.recycler.spill_dir = spill_dir;
  options.recycler.cold_tier_capacity_bytes = 1ll << 30;
  options.recycler.shared_spill_dir = true;
  options.recycler.fleet_instance = instance;
  auto db = Database::OpenOrDie(options);
  auto it = t.header.tags.find("objects");
  const int64_t objects =
      it != t.header.tags.end() ? std::atoll(it->second.c_str()) : 8000;
  skyserver::Setup(objects, &db->catalog());
  return db;
}

/// Replays `t`, prints/records one summary row, stores the replayed hit
/// rate and returns whether the digests reproduced.
bool RunPhase(const char* phase, Database* db, const trace::Trace& t,
              JsonResultSink* sink, double* hit_rate) {
  trace::ReplayOptions options;
  // Reuse decisions legitimately differ across instances (the standby
  // adopts where the primary computed); only the results must match.
  options.strict_modes = false;
  options.check_plan_shape = false;
  options.hit_rate_tolerance_pts = 1000;  // gated against the primary below
  trace::TraceReplayer replayer(db, options);
  trace::ReplayReport report;
  Stopwatch sw;
  Status st = replayer.Replay(t, &report);
  const double ms = sw.ElapsedMs();
  if (!st.ok()) {
    std::fprintf(stderr, "%s: replay error: %s\n", phase,
                 st.ToString().c_str());
    return false;
  }
  *hit_rate = report.replayed_hit_rate;
  std::printf("%-8s %5lld stmts %7.1f ms  hit%%=%5.1f  dig mism=%lld  %s\n",
              phase, static_cast<long long>(report.statements), ms,
              report.replayed_hit_rate,
              static_cast<long long>(report.digest_mismatches),
              report.ok() ? "ok" : "DIVERGED");
  if (!report.ok()) std::fprintf(stderr, "%s", report.ToString().c_str());
  sink->Add(JsonObject()
                .Set("bench", "failover_warmup")
                .Set("phase", phase)
                .Set("statements", report.statements)
                .Set("errors", report.errors)
                .Set("digest_mismatches", report.digest_mismatches)
                .Set("replayed_hit_rate", report.replayed_hit_rate)
                .Set("ms", ms)
                .Set("ok", static_cast<int64_t>(report.ok() ? 1 : 0)));
  return report.ok();
}

}  // namespace

int main() {
  const std::string path = EnvStr(
      "RECYCLEDB_TRACE",
      std::string(RDB_SOURCE_DIR) + "/tests/golden/skyserver_sweep.trace");
  const int64_t warmup_n = EnvInt("RECYCLEDB_WARMUP_N", 50);
  const double tolerance_pts =
      static_cast<double>(EnvInt("RECYCLEDB_FAILOVER_TOL", 10));

  trace::Trace t;
  Status st = trace::ReadTraceFile(path, &t);
  RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
  PrintHeader(StrFormat(
      "failover warm-up: %s (%lld statements, warm-up window %lld)",
      path.c_str(), static_cast<long long>(t.NumStatements()),
      static_cast<long long>(warmup_n)));

  const std::string spill_dir = MakeSpillDir();
  JsonResultSink sink;
  bool ok = true;
  double primary_rate = 0;
  double standby_rate = 0;

  auto primary = OpenInstance(t, spill_dir, "primary");
  ok = RunPhase("primary", primary.get(), t, &sink, &primary_rate) && ok;
  // Demote every retained result so the standby can adopt it.
  primary->FlushCache();

  auto standby = OpenInstance(t, spill_dir, "standby");
  fleet::StandbyTailer tailer(standby.get(), {});
  RDB_CHECK_MSG(tailer.RefreshNow().ok(), "standby refresh failed");
  primary.reset();  // primary dies
  RDB_CHECK_MSG(tailer.Promote().ok(), "standby promote failed");

  trace::Trace warmup = t;
  if (static_cast<int64_t>(warmup.events.size()) > warmup_n) {
    warmup.events.resize(static_cast<size_t>(warmup_n));
  }
  ok = RunPhase("standby", standby.get(), warmup, &sink, &standby_rate) && ok;

  const bool warm = standby_rate >= primary_rate - tolerance_pts;
  std::printf("gate: standby %.1f%% vs primary %.1f%% (tol %.0f pts)  %s\n",
              standby_rate, primary_rate, tolerance_pts,
              warm ? "ok" : "COLD");
  sink.Add(JsonObject()
               .Set("bench", "failover_warmup")
               .Set("phase", "gate")
               .Set("primary_hit_rate", primary_rate)
               .Set("standby_hit_rate", standby_rate)
               .Set("tolerance_pts", tolerance_pts)
               .Set("ok", static_cast<int64_t>(warm ? 1 : 0)));
  ok = ok && warm;

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) std::printf("json: %s\n", json_path.c_str());
  standby.reset();
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
  if (!ok) {
    std::fprintf(stderr, "FAIL: standby did not come up warm\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
