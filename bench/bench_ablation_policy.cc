// Ablation C: replacement policy comparison (paper's benefit-based policy
// vs LRU vs admit-all) under a tight cache on the TPC-H throughput run.
// The benefit metric (cost * h / size, Eq. 1) should dominate: it keeps
// expensive small results over cheap or huge ones.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.01);
  int streams = static_cast<int>(EnvInt("RECYCLEDB_STREAMS", 16));
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Ablation C: replacement policy, " + std::to_string(streams) +
              " TPC-H streams, 1MB cache, SPEC mode");
  std::printf("%12s %14s %10s %10s\n", "policy", "avg-stream(ms)", "reuses",
              "evictions");

  struct Case {
    const char* name;
    CachePolicy policy;
  };
  const Case cases[] = {{"benefit", CachePolicy::kBenefit},
                        {"lru", CachePolicy::kLru},
                        {"admit-all", CachePolicy::kAdmitAll}};
  for (const Case& c : cases) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.cache_bytes = 1 << 20;
    cfg.cache_policy = c.policy;
    auto db = MakeDatabase(catalog, cfg);
    auto specs = tpch::MakeStreams(streams, sf);
    workload::RunReport report =
        workload::RunStreams(db.get(), std::move(specs), 12);
    std::printf("%12s %14.1f %10lld %10lld\n", c.name, report.AvgStreamMs(),
                (long long)db->counters().reuses.load(),
                (long long)db->counters().evictions.load());
    std::fflush(stdout);
  }
  return 0;
}
