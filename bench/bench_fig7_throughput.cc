// Figure 7 reproduction: average evaluation time per TPC-H stream for
// 4/16/64/256 streams in modes OFF / HIST / SPEC / PA.
//
// Expected shape (paper): recycling improvement grows with the number of
// streams (10% at 4 streams up to ~79% at 256); SPEC beats HIST; PA wins
// from 64 streams up (extra plan cost amortizes once reuse is plentiful).
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.02);
  int64_t max_streams = EnvInt("RECYCLEDB_STREAMS_MAX", 256);
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Figure 7: avg evaluation time per TPC-H stream (ms), SF=" +
              std::to_string(sf));
  std::printf("%8s %10s %10s %10s %10s | %8s %8s %8s\n", "streams", "OFF",
              "HIST", "SPEC", "PA", "dHIST%", "dSPEC%", "dPA%");

  const RecyclerMode modes[] = {RecyclerMode::kOff, RecyclerMode::kHistory,
                                RecyclerMode::kSpeculation,
                                RecyclerMode::kProactive};
  for (int streams : {4, 16, 64, 256}) {
    if (streams > max_streams) continue;
    double avg_ms[4] = {0, 0, 0, 0};
    for (int m = 0; m < 4; ++m) {
      auto db = MakeDatabase(catalog, modes[m]);
      auto specs = tpch::MakeStreams(streams, sf);
      workload::RunReport report =
          workload::RunStreams(db.get(), std::move(specs), 12);
      avg_ms[m] = report.AvgStreamMs();
    }
    auto imp = [&](int m) { return 100.0 * (1.0 - avg_ms[m] / avg_ms[0]); };
    std::printf("%8d %10.1f %10.1f %10.1f %10.1f | %7.1f%% %7.1f%% %7.1f%%\n",
                streams, avg_ms[0], avg_ms[1], avg_ms[2], avg_ms[3], imp(1),
                imp(2), imp(3));
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper reference: improvements of ~10%% (4), ~24%% (16), ~55%% (64),"
      " ~79%% (256) for the best mode; SPEC>HIST, PA best at >=64 streams.\n");
  return 0;
}
