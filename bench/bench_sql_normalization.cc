// SQL normalization bench: the canonicalizing rewrite pass is what makes
// the text front-end recycler-friendly. Three query templates are each
// spelled in 8 syntactic variants (reordered conjuncts, flipped
// comparisons, constant arithmetic, NOT forms, BETWEEN, redundant and
// tautological conjuncts). With canonicalization ON every variant after
// the first must land on the seed's cache entry; with it OFF the noisy
// spellings fingerprint differently and miss. Every result is checked
// bit-identical against a recycler-bypass baseline on both arms.
//
// JSON (RECYCLEDB_JSON_OUT): one row per (arm, template) plus one summary
// row per arm. Gates (exit 1 on failure):
//   - ON  arm variant hit-rate >= 0.90
//   - OFF arm variant hit-rate <= 0.10 (SELECT * lowers to the identical
//     plan with or without canonicalization, so one exact hit is expected)
//   - bit-identical rows vs the bypass baseline everywhere
#include <algorithm>
#include <string>
#include <vector>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

TablePtr MakeSales(int64_t rows) {
  Schema s({{"city", TypeId::kString},
            {"year", TypeId::kInt32},
            {"sales", TypeId::kDouble}});
  static const char* kCities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
  TablePtr t = MakeTable(s);
  Rng rng(7);
  for (int64_t i = 0; i < rows; ++i) {
    t->AppendRow({std::string(kCities[rng.Uniform(0, 2)]),
                  static_cast<int32_t>(rng.Uniform(2005, 2012)),
                  static_cast<double>(rng.Uniform(0, 5000))});
  }
  return t;
}

struct SqlTemplate {
  const char* name;
  bool ordered;  // compare rows in order (ORDER BY) vs as a multiset
  std::vector<const char*> variants;  // [0] is the seed; the rest score
};

// Variants that must defeat the OFF arm hide constants behind folded
// arithmetic: a non-literal operand produces no range spec, so both
// exact matching and subsumption miss without the canonicalizer. Plain
// flips/reorders alone would still be caught by range extraction — and
// conjunct-subset subsumption serves any variant whose conjunct set is a
// fingerprint-superset of an earlier entry's, so every conjunct of every
// scored variant is disguised with a distinct arithmetic spelling.
const SqlTemplate kTemplates[] = {
    {"select_range", false,
     {
         "SELECT city, year, sales FROM sales"
         " WHERE year >= 2008 AND sales < 2500.0",
         "SELECT * FROM sales WHERE year >= 2008 AND sales < 2500.0",
         "SELECT city, year, sales FROM sales"
         " WHERE sales < 2499.0+1.0 AND year >= 2000+8",
         "SELECT city, year, sales FROM sales"
         " WHERE 2004+4 <= year AND sales < 2500.0+0.0",
         "SELECT city, year, sales FROM sales"
         " WHERE year >= 2008 AND year >= 2001+7 AND sales < 2502.0-2.0",
         "SELECT city, year, sales FROM sales"
         " WHERE NOT year < 2002+6 AND sales < 2500.0*1.0",
         "SELECT city, year, sales FROM sales"
         " WHERE year >= 2006+2 AND year >= 2006-0 AND sales < 2500.0/1.0",
         "SELECT city, year, sales FROM sales"
         " WHERE year >= 2003+5 AND sales < 5000.0-2500.0 AND TRUE",
     }},
    {"aggregate", true,
     {
         "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2010"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales WHERE 2000+10 <= year"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales"
         " WHERE NOT year < 2005+5 GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2020-10"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales"
         " WHERE year >= 2010 AND year >= 2005+3"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2*1005"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 4020/2"
         " GROUP BY city ORDER BY total DESC",
         "SELECT city, SUM(sales) AS total FROM sales"
         " WHERE year >= 2000+10 AND TRUE GROUP BY city ORDER BY total DESC",
     }},
    {"topn_between", true,
     {
         "SELECT city, sales FROM sales"
         " WHERE sales >= 1500.0 AND sales <= 3500.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE sales BETWEEN 1000.0+500.0 AND 3500.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE sales BETWEEN 1500.0 AND 7000.0/2.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE sales <= 3500.0 AND sales >= 3000.0/2.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE 750.0*2.0 <= sales AND sales <= 3500.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE NOT sales < 1000.0+500.0 AND sales <= 3500.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE sales >= 1500.0 AND sales >= 100.0+400.0"
         " AND sales <= 3500.0 ORDER BY sales ASC, city ASC LIMIT 100",
         "SELECT city, sales FROM sales"
         " WHERE sales >= 1500.0+0.0 AND sales <= 3500.0"
         " ORDER BY sales ASC, city ASC LIMIT 100",
     }},
};

/// Exact row rendering (doubles at full precision — this bench asserts
/// bit-identity, not approximate equality).
std::vector<std::string> RowStrings(const Table& t, bool ordered) {
  std::vector<std::string> rows;
  rows.reserve(static_cast<size_t>(t.num_rows()));
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    std::string key;
    for (int c = 0; c < t.num_columns(); ++c) {
      const Datum& d = t.Get(r, c);
      if (d.index() == 4) {
        key += StrFormat("%.17g", std::get<double>(d));
      } else {
        key += DatumToString(d);
      }
      key += "|";
    }
    rows.push_back(std::move(key));
  }
  if (!ordered) std::sort(rows.begin(), rows.end());
  return rows;
}

struct ArmResult {
  int64_t eligible = 0;  // scored variant executions (seeds excluded)
  int64_t hits = 0;
  int64_t mismatches = 0;
  double HitRate() const {
    return eligible == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(eligible);
  }
};

}  // namespace

int main() {
  const int64_t rows = EnvInt("RECYCLEDB_BENCH_ROWS", 50000);
  PrintHeader(StrFormat(
      "SQL normalization: canonicalization on/off over %lld-row sales "
      "(8 spellings per template)",
      static_cast<long long>(rows)));

  TablePtr sales = MakeSales(rows);
  JsonResultSink sink;
  ArmResult arms[2];

  std::printf("%-5s %-14s %9s %6s %6s %10s\n", "arm", "template", "variants",
              "hits", "rate", "rows");
  for (int arm = 0; arm < 2; ++arm) {
    const bool canonicalize = (arm == 0);
    DatabaseOptions options;
    options.recycler.mode = RecyclerMode::kSpeculation;
    options.canonicalize_plans = canonicalize;
    auto db = Database::OpenOrDie(options);
    RDB_CHECK(db->CreateTable("sales", sales).ok());
    SessionOptions bypass;
    bypass.bypass_recycler = true;
    auto baseline_session = db->Connect(bypass);

    for (const SqlTemplate& tpl : kTemplates) {
      // The ground truth, computed outside the recycler on this arm's
      // engine.
      Result truth = baseline_session->Sql(tpl.variants[0]);
      RDB_CHECK_MSG(truth.ok(), truth.status().ToString().c_str());
      std::vector<std::string> expected =
          RowStrings(*truth.table(), tpl.ordered);

      int64_t hits = 0, mismatches = 0;
      for (size_t v = 0; v < tpl.variants.size(); ++v) {
        Result r = db->Sql(tpl.variants[v]);
        RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
        if (RowStrings(*r.table(), tpl.ordered) != expected) {
          std::fprintf(stderr, "result mismatch: arm=%s template=%s v=%zu\n",
                       canonicalize ? "on" : "off", tpl.name, v);
          ++mismatches;
        }
        if (v == 0) continue;  // the seed materializes; it cannot hit
        if (r.recycled()) ++hits;
      }
      const int64_t eligible =
          static_cast<int64_t>(tpl.variants.size()) - 1;
      arms[arm].eligible += eligible;
      arms[arm].hits += hits;
      arms[arm].mismatches += mismatches;
      std::printf("%-5s %-14s %9lld %6lld %5.0f%% %10lld\n",
                  canonicalize ? "on" : "off", tpl.name,
                  static_cast<long long>(eligible),
                  static_cast<long long>(hits),
                  eligible == 0 ? 0.0 : 100.0 * hits / eligible,
                  static_cast<long long>(truth.num_rows()));
      JsonObject row;
      row.Set("bench", "sql_normalization")
          .Set("arm", canonicalize ? "on" : "off")
          .Set("template", tpl.name)
          .Set("eligible", eligible)
          .Set("hits", hits)
          .Set("mismatches", mismatches)
          .Set("rows", truth.num_rows());
      sink.Add(row);
    }
    JsonObject summary;
    summary.Set("bench", "sql_normalization")
        .Set("arm", canonicalize ? "on" : "off")
        .Set("template", "TOTAL")
        .Set("eligible", arms[arm].eligible)
        .Set("hits", arms[arm].hits)
        .Set("mismatches", arms[arm].mismatches)
        .Set("hit_rate", arms[arm].HitRate());
    sink.Add(summary);
  }

  std::printf(
      "\ncanonicalization on: %.1f%% variant hit-rate; off: %.1f%%\n",
      100.0 * arms[0].HitRate(), 100.0 * arms[1].HitRate());

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("JSON results written to %s\n", json_path.c_str());
  }

  // Regression gates.
  int rc = 0;
  if (arms[0].HitRate() < 0.90) {
    std::fprintf(stderr, "FAIL: on-arm hit-rate %.3f below 0.90\n",
                 arms[0].HitRate());
    rc = 1;
  }
  if (arms[1].HitRate() > 0.10) {
    std::fprintf(stderr, "FAIL: off-arm hit-rate %.3f above 0.10\n",
                 arms[1].HitRate());
    rc = 1;
  }
  if (arms[0].mismatches + arms[1].mismatches > 0) {
    std::fprintf(stderr, "FAIL: %lld result mismatches vs bypass baseline\n",
                 static_cast<long long>(arms[0].mismatches +
                                        arms[1].mismatches));
    rc = 1;
  }
  return rc;
}
