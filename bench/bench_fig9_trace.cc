// Figure 9 reproduction: detailed trace of 8 concurrent streams running 6
// TPC-H patterns (Q1, Q8, Q13, Q18, Q19, Q21) with speculation on and the
// proactive variants for Q1/Q19 (PA mode).
//
// Expected shape (paper): the first instance of each shared intermediate
// materializes it (possibly stalling concurrent peers); later instances
// reuse it; every query either materializes or reuses its final result.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.02);
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Figure 9: 8-stream trace of {Q1,Q8,Q13,Q18,Q19,Q21}, PA mode");

  const int kPatterns[] = {1, 8, 13, 18, 19, 21};
  std::vector<workload::StreamSpec> streams;
  for (int s = 0; s < 8; ++s) {
    Rng rng(500 + s);
    workload::StreamSpec spec;
    // Per-stream order permutation of the 6 patterns, qgen parameters.
    std::vector<int> order(std::begin(kPatterns), std::end(kPatterns));
    for (int i = 5; i > 0; --i) {
      std::swap(order[i], order[rng.Uniform(0, i)]);
    }
    for (int q : order) {
      spec.labels.push_back("Q" + std::to_string(q));
      spec.plans.push_back(
          tpch::BuildQuery(q, tpch::GenerateParams(q, &rng, sf), sf));
    }
    streams.push_back(std::move(spec));
  }

  auto db = MakeDatabase(catalog, RecyclerMode::kProactive);
  workload::RunReport report = workload::RunStreams(db.get(), streams, 8);

  std::printf("%s\n", workload::FormatTrace(report).c_str());
  std::printf("wall time: %.1f ms\n", report.wall_ms);
  std::printf("reuses=%lld (subsumption=%lld) materializations=%lld "
              "stalls=%lld spec-aborts=%lld proactive=%lld\n",
              (long long)db->counters().reuses.load(),
              (long long)db->counters().subsumption_reuses.load(),
              (long long)db->counters().materializations.load(),
              (long long)db->counters().stalls.load(),
              (long long)db->counters().spec_aborts.load(),
              (long long)db->counters().proactive_rewrites.load());
  std::printf("recycler cache: %lld entries, %.1f MB\n",
              (long long)db->graph_stats().num_cached,
              db->graph_stats().cached_bytes / 1048576.0);
  return 0;
}
