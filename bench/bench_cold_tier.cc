// Cold-tier restart warm-up benchmark.
//
// Section A (overlapping SkyServer region sweep): run the sweep against
// a Database with a spill directory, close it (the shutdown checkpoint
// persists the hot cache), reopen over the same directory and rerun the
// identical sweep. The warm rerun must reach a reuse hit-rate within 10
// points of the pre-restart run — served by cold-tier adoption instead
// of starting from zero.
//
// Section B (disjoint windows): with no intra-run overlap the cold run's
// hit-rate is ~0 — every process used to start from scratch. After a
// restart over the spill directory the rerun answers (nearly) every
// window from disk, which is the paper-scale motivation for the tier:
// accumulated coverage becomes persistent capital.
//
// JSON (RECYCLEDB_JSON_OUT): one row per run with hit-rate and cold-hit
// counters. Exits nonzero when either gate fails (CI bench-smoke runs
// this).
#include <filesystem>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

struct SweepResult {
  int queries = 0;
  int hits = 0;  // queries that consumed at least one cached result
  int64_t cold_hits = 0;
  int64_t adoptions = 0;
  int64_t spills = 0;
  double total_ms = 0;
  double HitRate() const {
    return queries == 0 ? 0 : static_cast<double>(hits) / queries;
  }
};

std::string MakeTempDir(const char* tag) {
  std::string tmpl = EnvStr("TMPDIR", "/tmp") + "/rdb-bench-" + tag + "-XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* d = mkdtemp(buf.data());
  RDB_CHECK_MSG(d != nullptr, "cannot create bench spill dir");
  return d;
}

RecyclerConfig SpillConfig(const std::string& dir) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;
  cfg.spill_dir = dir;
  return cfg;
}

SweepResult RunSweep(Database* db, int num_queries, double window_deg,
                     double step_deg, uint64_t seed) {
  Rng rng(seed);
  std::vector<skyserver::SkyQuery> sweep =
      skyserver::GenerateRegionSweep(num_queries, &rng, window_deg, step_deg);
  SweepResult out;
  Stopwatch sw;
  int64_t cold0 = db->counters().cold_hits.load();
  int64_t adopt0 = db->counters().cold_adoptions.load();
  int64_t spill0 = db->counters().cold_spills.load();
  for (skyserver::SkyQuery& q : sweep) {
    Result r = db->Execute(std::move(q.plan));
    RDB_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    ++out.queries;
    if (r.recycled()) ++out.hits;
  }
  out.total_ms = sw.ElapsedMs();
  out.cold_hits = db->counters().cold_hits.load() - cold0;
  out.adoptions = db->counters().cold_adoptions.load() - adopt0;
  out.spills = db->counters().cold_spills.load() - spill0;
  return out;
}

void Report(JsonResultSink* sink, const char* phase, const SweepResult& r) {
  std::printf("%-22s %8d %8d %9.1f%% %10lld %10lld %12.1f\n", phase,
              r.queries, r.hits, 100 * r.HitRate(),
              static_cast<long long>(r.cold_hits),
              static_cast<long long>(r.adoptions), r.total_ms);
  std::fflush(stdout);
  JsonObject row;
  row.Set("bench", "cold_tier")
      .Set("phase", phase)
      .Set("queries", static_cast<int64_t>(r.queries))
      .Set("hits", static_cast<int64_t>(r.hits))
      .Set("hit_rate", r.HitRate())
      .Set("cold_hits", r.cold_hits)
      .Set("cold_adoptions", r.adoptions)
      .Set("cold_spills", r.spills)
      .Set("total_ms", r.total_ms);
  sink->Add(row);
}

}  // namespace

int main() {
  const int64_t objects = skyserver::ObjectsFromEnv(60000);
  const int num_queries =
      static_cast<int>(EnvInt("RECYCLEDB_SWEEP_QUERIES", 30));

  Catalog catalog;
  skyserver::Setup(objects, &catalog);

  PrintHeader(StrFormat(
      "Cold tier: restart warm-up (%lld objects, %d-query region sweeps)",
      static_cast<long long>(objects), num_queries));
  std::printf("%-22s %8s %8s %10s %10s %10s %12s\n", "phase", "queries",
              "hits", "hit-rate", "cold-hits", "adoptions", "total(ms)");

  JsonResultSink sink;

  // --- Section A: overlapping sweep, restart, identical rerun ----------
  const std::string dir_a = MakeTempDir("overlap");
  SweepResult pre, warm;
  {
    auto db = MakeDatabase(catalog, SpillConfig(dir_a));
    pre = RunSweep(db.get(), num_queries, 8.0, 1.0, 20130408);
    Report(&sink, "overlap pre-restart", pre);
    // Database teardown checkpoints the hot cache into dir_a.
  }
  {
    auto db = MakeDatabase(catalog, SpillConfig(dir_a));
    warm = RunSweep(db.get(), num_queries, 8.0, 1.0, 20130408);
    Report(&sink, "overlap warm rerun", warm);
  }

  // --- Section B: disjoint windows — cold start vs. restart rerun ------
  const std::string dir_b = MakeTempDir("disjoint");
  SweepResult cold, rerun;
  {
    auto db = MakeDatabase(catalog, SpillConfig(dir_b));
    cold = RunSweep(db.get(), num_queries, 4.0, 4.0, 715517);
    Report(&sink, "disjoint cold start", cold);
  }
  {
    auto db = MakeDatabase(catalog, SpillConfig(dir_b));
    rerun = RunSweep(db.get(), num_queries, 4.0, 4.0, 715517);
    Report(&sink, "disjoint warm rerun", rerun);
  }

  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("\nJSON results written to %s\n", json_path.c_str());
  }
  std::error_code ec;
  std::filesystem::remove_all(dir_a, ec);
  std::filesystem::remove_all(dir_b, ec);

  std::printf(
      "\nExpected: the warm rerun re-admits the previous process's spilled "
      "results, so its hit-rate matches the pre-restart run (A) and turns "
      "the zero-overlap sweep's ~0%% into a near-total hit-rate (B).\n");

  // Gate 1 (acceptance): warm-rerun hit-rate within 10 points of the
  // pre-restart run.
  if (warm.HitRate() < pre.HitRate() - 0.10) {
    std::fprintf(stderr,
                 "FAIL: warm rerun hit-rate %.3f more than 10 points below "
                 "pre-restart %.3f\n",
                 warm.HitRate(), pre.HitRate());
    return 1;
  }
  if (warm.cold_hits <= 0) {
    std::fprintf(stderr, "FAIL: warm rerun recorded no cold hits\n");
    return 1;
  }
  // Gate 2: restart converts the disjoint sweep from ~no reuse into
  // mostly-from-disk reuse.
  if (rerun.HitRate() < cold.HitRate() + 0.5) {
    std::fprintf(stderr,
                 "FAIL: disjoint rerun hit-rate %.3f not >= cold start "
                 "%.3f + 0.5\n",
                 rerun.HitRate(), cold.HitRate());
    return 1;
  }
  return 0;
}
