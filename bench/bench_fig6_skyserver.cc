// Figure 6 reproduction: impact of recycling on the (synthetic) SkyServer
// workload, for the MonetDB-style keep-all baseline and the pipelined
// recycler, as a percentage of each system's naive (no recycling) run.
//
// Workload splits simulate refreshes: 1x100, 2x50, 4x25 queries with a
// full cache flush between batches. Cache budgets: a scaled "1GB" (large
// enough for the pipelined recycler's few small results, far too small
// for keep-all's full intermediates) and unlimited.
//
// Expected shape (paper): both systems benefit greatly; keep-all wins with
// an unlimited cache (free materialization catches the 2nd occurrence);
// the pipelined recycler wins with the bounded cache (it selects what to
// keep); the pipelined recycler's footprint is orders of magnitude
// smaller (a few hundred KB vs ~1.5GB in the paper).
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

struct Workload {
  std::vector<skyserver::SkyQuery> queries;
  int num_batches;
};

double RunKeepAll(const Catalog* catalog, const Workload& w,
                  int64_t cache_bytes, bool recycling,
                  int64_t* peak_bytes = nullptr) {
  KeepAllEngine::Config cfg;
  cfg.cache_bytes = cache_bytes;
  cfg.recycling = recycling;
  KeepAllEngine engine(catalog, cfg);
  Stopwatch sw;
  int per_batch = static_cast<int>(w.queries.size()) / w.num_batches;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (i > 0 && i % per_batch == 0) engine.FlushCache();  // refresh
    engine.Execute(w.queries[i].plan);
  }
  if (peak_bytes != nullptr) *peak_bytes = engine.stats().peak_cached_bytes;
  return sw.ElapsedMs();
}

double RunRecycler(const Catalog& catalog, const Workload& w,
                   int64_t cache_bytes, RecyclerMode mode,
                   int64_t* peak_bytes = nullptr) {
  RecyclerConfig cfg;
  cfg.mode = mode;
  cfg.cache_bytes = cache_bytes;
  auto db = MakeDatabase(catalog, cfg);
  Stopwatch sw;
  int per_batch = static_cast<int>(w.queries.size()) / w.num_batches;
  int64_t peak = 0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    if (i > 0 && i % per_batch == 0) db->FlushCache();
    db->Execute(w.queries[i].plan);
    peak = std::max(peak, db->graph_stats().cached_bytes);
  }
  if (peak_bytes != nullptr) *peak_bytes = peak;
  return sw.ElapsedMs();
}

}  // namespace

int main() {
  int64_t objects = skyserver::ObjectsFromEnv(200000);
  Catalog catalog;
  skyserver::Setup(objects, &catalog);
  // Scaled "1GB": big enough for the recycler's small results, too small
  // to hold keep-all's full base-scan copies (paper: MonetDB needed 1.5GB
  // where the recycler needed a few hundred KB).
  const int64_t kLimited = EnvInt("RECYCLEDB_SKY_CACHE", 4 << 20);

  PrintHeader("Figure 6: SkyServer workload, % of naive (objects=" +
              std::to_string(objects) + ")");

  Rng rng(2013);
  Workload workloads[3];
  workloads[0] = {skyserver::GenerateWorkload(100, &rng), 1};  // 1x100
  rng = Rng(2013);
  workloads[1] = {skyserver::GenerateWorkload(100, &rng), 2};  // 2x50
  rng = Rng(2013);
  workloads[2] = {skyserver::GenerateWorkload(100, &rng), 4};  // 4x25

  const char* split_names[3] = {"1x100", "2x50", "4x25"};

  double naive_keepall = RunKeepAll(&catalog, workloads[0], -1, false);
  double naive_pipeline;
  {
    auto db = MakeDatabase(catalog, RecyclerMode::kOff);
    Stopwatch sw;
    for (const auto& q : workloads[0].queries) db->Execute(q.plan);
    naive_pipeline = sw.ElapsedMs();
  }
  std::printf("naive (no recycling): keep-all %.0f ms, pipelined %.0f ms\n\n",
              naive_keepall, naive_pipeline);

  std::printf("%-7s | %-25s | %-25s\n", "", "limited cache (scaled 1GB)",
              "unlimited cache");
  std::printf("%-7s | %11s %13s | %11s %13s\n", "split", "KeepAll%",
              "Recycler%", "KeepAll%", "Recycler%");
  int64_t keepall_peak = 0, recycler_peak = 0;
  for (int i = 0; i < 3; ++i) {
    double ka_lim = RunKeepAll(&catalog, workloads[i], kLimited, true);
    double rc_lim = RunRecycler(catalog, workloads[i], kLimited,
                                RecyclerMode::kSpeculation);
    double ka_unl = RunKeepAll(&catalog, workloads[i], -1, true,
                               &keepall_peak);
    double rc_unl = RunRecycler(catalog, workloads[i], -1,
                                RecyclerMode::kSpeculation, &recycler_peak);
    std::printf("%-7s | %10.1f%% %12.1f%% | %10.1f%% %12.1f%%\n",
                split_names[i], 100 * ka_lim / naive_keepall,
                100 * rc_lim / naive_pipeline, 100 * ka_unl / naive_keepall,
                100 * rc_unl / naive_pipeline);
    std::fflush(stdout);
  }

  std::printf("\ncache footprint (unlimited, 1x100): keep-all %.1f MB vs "
              "pipelined recycler %.1f KB\n",
              keepall_peak / 1048576.0, recycler_peak / 1024.0);
  std::printf("Paper reference: both systems drop to ~5-45%% of naive; "
              "keep-all best with unlimited cache, pipelined recycler best "
              "with the bounded cache; footprint: 1.5GB vs a few hundred "
              "KB.\n");

  // --- overlapping sky-region sweep (partial-reuse beneficiary) ---------
  // Drifting RA windows inside a fixed declination band: consecutive
  // regions overlap heavily but none contains another, so exact matching
  // and single-superset subsumption both miss. Partial stitching serves
  // each window from the cached neighbours plus a delta scan.
  PrintHeader("Sky-region sweep: overlapping RA windows, partial reuse");
  std::printf("%8s %12s %10s %10s %10s\n", "partial", "total(ms)", "reuses",
              "stitched", "hit-rate");
  JsonResultSink sink;
  double sweep_hit_rate[2] = {0, 0};
  for (bool partial : {false, true}) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.enable_partial_reuse = partial;
    auto db = MakeDatabase(catalog, cfg);
    Rng sweep_rng(195);
    auto sweep = skyserver::GenerateRegionSweep(40, &sweep_rng);
    Stopwatch sw;
    for (const auto& q : sweep) db->Execute(q.plan);
    double ms = sw.ElapsedMs();
    int64_t queries = db->counters().queries.load();
    int64_t reuses = db->counters().reuses.load();
    int64_t stitched = db->counters().partial_reuses.load();
    double hit_rate =
        queries == 0 ? 0 : static_cast<double>(reuses) / queries;
    sweep_hit_rate[partial ? 1 : 0] = hit_rate;
    std::printf("%8s %12.1f %10lld %10lld %9.1f%%\n", partial ? "on" : "off",
                ms, (long long)reuses, (long long)stitched, 100 * hit_rate);
    std::fflush(stdout);
    JsonObject row;
    row.Set("bench", "fig6_region_sweep")
        .Set("partial_reuse", partial ? "on" : "off")
        .Set("total_ms", ms)
        .Set("queries", queries)
        .Set("reuses", reuses)
        .Set("partial_reuses", stitched)
        .Set("hit_rate", hit_rate);
    sink.Add(row);
  }
  std::string json_path = sink.WriteEnvPath();
  if (!json_path.empty()) {
    std::printf("JSON results written to %s\n", json_path.c_str());
  }
  if (sweep_hit_rate[1] <= sweep_hit_rate[0]) {
    std::fprintf(stderr,
                 "FAIL: sweep hit-rate with partial reuse (%.3f) not above "
                 "without (%.3f)\n",
                 sweep_hit_rate[1], sweep_hit_rate[0]);
    return 1;
  }
  return 0;
}
