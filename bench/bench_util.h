// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "recycler/recycler.h"
#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "workload/driver.h"

namespace recycledb {
namespace bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  int64_t x = std::atoll(v);
  return x > 0 ? x : fallback;
}

/// Builds the TPC-H stream specs for `num_streams` streams. Seeded by
/// stream id so every mode sees the identical workload.
inline std::vector<workload::StreamSpec> MakeTpchStreams(int num_streams,
                                                         double sf,
                                                         uint64_t seed = 77) {
  std::vector<workload::StreamSpec> streams;
  streams.reserve(num_streams);
  for (int s = 0; s < num_streams; ++s) {
    Rng rng(seed + static_cast<uint64_t>(s) * 1000003ULL);
    workload::StreamSpec spec;
    for (const auto& q : tpch::GenerateStream(s, &rng, sf)) {
      spec.labels.push_back("Q" + std::to_string(q.query));
      spec.plans.push_back(tpch::BuildQuery(q.query, q.params, sf));
    }
    streams.push_back(std::move(spec));
  }
  return streams;
}

inline Recycler MakeRecycler(const Catalog* catalog, RecyclerMode mode,
                             int64_t cache_bytes = 256ll << 20) {
  RecyclerConfig cfg;
  cfg.mode = mode;
  cfg.cache_bytes = cache_bytes;
  return Recycler(catalog, cfg);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace recycledb
