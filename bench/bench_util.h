// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "recycledb/recycledb.h"

namespace recycledb {
namespace bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  int64_t x = std::atoll(v);
  return x > 0 ? x : fallback;
}

inline std::string EnvStr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::string(v);
}

// ---------------------------------------------------------------------------
// Minimal JSON emission (machine-readable bench results for CI artifacts)
// ---------------------------------------------------------------------------

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// One flat JSON object built from typed key/value pairs.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& v) {
    fields_.push_back(StrFormat("\"%s\":\"%s\"", JsonEscape(key).c_str(),
                                JsonEscape(v).c_str()));
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonObject& Set(const std::string& key, double v) {
    fields_.push_back(
        StrFormat("\"%s\":%.6g", JsonEscape(key).c_str(), v));
    return *this;
  }
  JsonObject& Set(const std::string& key, int64_t v) {
    fields_.push_back(StrFormat("\"%s\":%lld", JsonEscape(key).c_str(),
                                static_cast<long long>(v)));
    return *this;
  }
  JsonObject& Set(const std::string& key, int v) {
    return Set(key, static_cast<int64_t>(v));
  }

  std::string Str() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i];
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::string> fields_;
};

/// A JSON array of objects that benches append rows to. `WriteEnvPath`
/// writes the array to the file named by RECYCLEDB_JSON_OUT (when set),
/// which the CI bench-smoke step uploads as an artifact.
class JsonResultSink {
 public:
  void Add(const JsonObject& obj) { rows_.push_back(obj.Str()); }

  std::string Str() const {
    std::string out = "[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",\n ";
      out += rows_[i];
    }
    out += "]";
    return out;
  }

  /// Writes to $RECYCLEDB_JSON_OUT; returns the path written, or "" when
  /// the variable is unset / the file could not be opened.
  std::string WriteEnvPath(const char* env_var = "RECYCLEDB_JSON_OUT") const {
    const char* path = std::getenv(env_var);
    if (path == nullptr || path[0] == '\0') return "";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return "";
    std::string s = Str();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return path;
  }

 private:
  std::vector<std::string> rows_;
};

/// Opens a Database with `config` whose catalog shares the base tables
/// of `source` (zero-copy TablePtr sharing), so mode-sweep benches
/// generate the workload data once and compare engines over identical
/// tables.
inline std::unique_ptr<Database> MakeDatabase(const Catalog& source,
                                              const RecyclerConfig& config) {
  DatabaseOptions options;
  options.recycler = config;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  for (const auto& name : source.TableNames()) {
    RDB_CHECK(db->CreateTable(name, source.GetTable(name)).ok());
  }
  return db;
}

inline std::unique_ptr<Database> MakeDatabase(
    const Catalog& source, RecyclerMode mode,
    int64_t cache_bytes = 256ll << 20) {
  RecyclerConfig config;
  config.mode = mode;
  config.cache_bytes = cache_bytes;
  return MakeDatabase(source, config);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace recycledb
