// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "recycler/recycler.h"
#include "skyserver/skyserver.h"
#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "workload/driver.h"

namespace recycledb {
namespace bench {

inline int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  int64_t x = std::atoll(v);
  return x > 0 ? x : fallback;
}

inline std::string EnvStr(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || v[0] == '\0') ? fallback : std::string(v);
}

// ---------------------------------------------------------------------------
// Minimal JSON emission (machine-readable bench results for CI artifacts)
// ---------------------------------------------------------------------------

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// One flat JSON object built from typed key/value pairs.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& v) {
    fields_.push_back(StrFormat("\"%s\":\"%s\"", JsonEscape(key).c_str(),
                                JsonEscape(v).c_str()));
    return *this;
  }
  JsonObject& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonObject& Set(const std::string& key, double v) {
    fields_.push_back(
        StrFormat("\"%s\":%.6g", JsonEscape(key).c_str(), v));
    return *this;
  }
  JsonObject& Set(const std::string& key, int64_t v) {
    fields_.push_back(StrFormat("\"%s\":%lld", JsonEscape(key).c_str(),
                                static_cast<long long>(v)));
    return *this;
  }
  JsonObject& Set(const std::string& key, int v) {
    return Set(key, static_cast<int64_t>(v));
  }

  std::string Str() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i];
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::string> fields_;
};

/// A JSON array of objects that benches append rows to. `WriteEnvPath`
/// writes the array to the file named by RECYCLEDB_JSON_OUT (when set),
/// which the CI bench-smoke step uploads as an artifact.
class JsonResultSink {
 public:
  void Add(const JsonObject& obj) { rows_.push_back(obj.Str()); }

  std::string Str() const {
    std::string out = "[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ",\n ";
      out += rows_[i];
    }
    out += "]";
    return out;
  }

  /// Writes to $RECYCLEDB_JSON_OUT; returns the path written, or "" when
  /// the variable is unset / the file could not be opened.
  std::string WriteEnvPath(const char* env_var = "RECYCLEDB_JSON_OUT") const {
    const char* path = std::getenv(env_var);
    if (path == nullptr || path[0] == '\0') return "";
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) return "";
    std::string s = Str();
    std::fwrite(s.data(), 1, s.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return path;
  }

 private:
  std::vector<std::string> rows_;
};

/// Builds the TPC-H stream specs for `num_streams` streams. Seeded by
/// stream id so every mode sees the identical workload.
inline std::vector<workload::StreamSpec> MakeTpchStreams(int num_streams,
                                                         double sf,
                                                         uint64_t seed = 77) {
  std::vector<workload::StreamSpec> streams;
  streams.reserve(num_streams);
  for (int s = 0; s < num_streams; ++s) {
    Rng rng(seed + static_cast<uint64_t>(s) * 1000003ULL);
    workload::StreamSpec spec;
    for (const auto& q : tpch::GenerateStream(s, &rng, sf)) {
      spec.labels.push_back("Q" + std::to_string(q.query));
      spec.plans.push_back(tpch::BuildQuery(q.query, q.params, sf));
    }
    streams.push_back(std::move(spec));
  }
  return streams;
}

/// Builds SkyServer stream specs: `num_streams` streams of
/// `queries_per_stream` queries each, drawn from the synthetic 100-query
/// log generator (dominant exact repeats + variants sharing the cone
/// search). Seeded per stream so runs are reproducible.
inline std::vector<workload::StreamSpec> MakeSkyStreams(
    int num_streams, int queries_per_stream, uint64_t seed = 42) {
  std::vector<workload::StreamSpec> streams;
  streams.reserve(num_streams);
  for (int s = 0; s < num_streams; ++s) {
    Rng rng(seed + static_cast<uint64_t>(s) * 7919ULL);
    workload::StreamSpec spec;
    for (auto& q :
         skyserver::GenerateWorkload(queries_per_stream, &rng)) {
      spec.labels.push_back(q.dominant ? "sky-dom" : "sky-var");
      spec.plans.push_back(std::move(q.plan));
    }
    streams.push_back(std::move(spec));
  }
  return streams;
}

inline Recycler MakeRecycler(const Catalog* catalog, RecyclerMode mode,
                             int64_t cache_bytes = 256ll << 20) {
  RecyclerConfig cfg;
  cfg.mode = mode;
  cfg.cache_bytes = cache_bytes;
  return Recycler(catalog, cfg);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace recycledb
