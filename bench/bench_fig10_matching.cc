// Figure 10 reproduction: matching + insertion cost over a 256-stream
// TPC-H run (5632 query invocations) as the recycler graph grows.
//
// Expected shape (paper): cost grows moderately with graph size and stays
// orders of magnitude below query evaluation cost (max ~2 ms vs queries of
// 0.3-11.3 s on the paper's hardware).
#include <algorithm>

#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.02);
  int streams = static_cast<int>(EnvInt("RECYCLEDB_STREAMS", 256));
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Figure 10: matching+insertion cost over " +
              std::to_string(streams * 22) + " query invocations");

  // Measure pure matching/insertion: history mode with a zero-byte cache
  // performs the full graph protocol but never materializes, so Prepare
  // cost is exactly the matching cost. Queries are not executed (the
  // paper's matching cost is independent of execution), so this goes
  // through the facade's white-box recycler() escape hatch.
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  cfg.cache_bytes = 0;
  auto db = MakeDatabase(catalog, cfg);
  Recycler& rec = db->recycler();

  struct Sample {
    int query_no;
    std::string label;
    double match_ms;
    int64_t graph_nodes;
  };
  std::vector<Sample> samples;
  int query_no = 0;
  for (int s = 0; s < streams; ++s) {
    Rng rng(77 + static_cast<uint64_t>(s) * 1000003ULL);
    for (const auto& q : tpch::GenerateStream(s, &rng, sf)) {
      PlanPtr plan = tpch::BuildQuery(q.query, q.params, sf);
      auto prepared = rec.Prepare(plan);
      samples.push_back({++query_no, "Q" + std::to_string(q.query),
                         prepared->trace().match_ms,
                         prepared->trace().graph_nodes_at_match});
    }
  }

  // Left plot: total matching cost vs query number (bucketed averages).
  std::printf("%10s %12s %14s\n", "query#", "graph-nodes", "match-cost(us)");
  const size_t bucket = std::max<size_t>(1, samples.size() / 16);
  for (size_t i = 0; i < samples.size(); i += bucket) {
    double sum = 0;
    int64_t nodes = 0;
    size_t n = std::min(bucket, samples.size() - i);
    for (size_t j = i; j < i + n; ++j) {
      sum += samples[j].match_ms;
      nodes = samples[j].graph_nodes;
    }
    std::printf("%10zu %12lld %14.1f\n", i + n, (long long)nodes,
                1000.0 * sum / n);
  }

  // Right plot: per-pattern average matching cost.
  std::printf("\n%6s %14s %10s\n", "query", "match-cost(us)", "samples");
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    std::string label = "Q" + std::to_string(q);
    double sum = 0;
    int n = 0;
    for (const auto& s : samples) {
      if (s.label == label) {
        sum += s.match_ms;
        ++n;
      }
    }
    std::printf("%6s %14.1f %10d\n", label.c_str(), 1000.0 * sum / n, n);
  }

  double max_ms = 0;
  for (const auto& s : samples) max_ms = std::max(max_ms, s.match_ms);
  std::printf("\nmax matching cost: %.2f ms over %zu invocations; final "
              "graph: %lld nodes\n",
              max_ms, samples.size(),
              (long long)db->graph_stats().num_nodes);
  std::printf("Paper reference: moderate growth with graph size; max ~2 ms, "
              "orders of magnitude below query evaluation cost.\n");
  return 0;
}
