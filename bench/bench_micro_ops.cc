// Micro-benchmarks (google-benchmark): operator throughput, expression
// evaluation, and recycler-graph matching/insertion latency.
#include <benchmark/benchmark.h>

// Operator-level micro benches are deliberately white-box (they time
// ScanOp and the raw Executor); everything engine-level goes through the
// public umbrella header.
#include "exec/operators.h"
#include "recycledb/recycledb.h"

namespace recycledb {
namespace {

Catalog* SharedCatalog() {
  static Catalog* catalog = [] {
    auto* c = new Catalog();
    Schema s({{"k", TypeId::kInt32},
              {"g", TypeId::kInt32},
              {"v", TypeId::kDouble}});
    TablePtr t = MakeTable(s);
    Rng rng(5);
    for (int i = 0; i < 1 << 20; ++i) {
      t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 1 << 20)),
                    static_cast<int32_t>(rng.Uniform(0, 512)),
                    static_cast<double>(rng.Uniform(0, 100000))});
    }
    (void)c->RegisterTable("big", t);
    return c;
  }();
  return catalog;
}

void RunPlan(PlanPtr plan, benchmark::State& state) {
  Executor exec(SharedCatalog());
  int64_t rows = 0;
  for (auto _ : state) {
    PlanPtr p = plan->CloneShallow();
    p->Bind(*SharedCatalog());
    ExecResult r = exec.Run(p);
    rows += r.table->num_rows();
  }
  benchmark::DoNotOptimize(rows);
  state.SetItemsProcessed(state.iterations() * (1 << 20));
}

void BM_Scan(benchmark::State& state) {
  RunPlan(PlanNode::Scan("big", {"k", "v"}), state);
}
BENCHMARK(BM_Scan)->Unit(benchmark::kMillisecond);

void BM_Filter(benchmark::State& state) {
  RunPlan(PlanNode::Select(
              PlanNode::Scan("big", {"k", "v"}),
              Expr::Lt(Expr::Column("v"), Expr::Literal(1000.0))),
          state);
}
BENCHMARK(BM_Filter)->Unit(benchmark::kMillisecond);

void BM_ProjectArith(benchmark::State& state) {
  RunPlan(PlanNode::Project(
              PlanNode::Scan("big", {"v"}),
              {{Expr::Arith(ArithOp::kMul, Expr::Column("v"),
                            Expr::Literal(1.07)),
                "taxed"}}),
          state);
}
BENCHMARK(BM_ProjectArith)->Unit(benchmark::kMillisecond);

void BM_HashAgg512Groups(benchmark::State& state) {
  RunPlan(PlanNode::Aggregate(PlanNode::Scan("big", {"g", "v"}), {"g"},
                              {{AggFunc::kSum, Expr::Column("v"), "sv"}}),
          state);
}
BENCHMARK(BM_HashAgg512Groups)->Unit(benchmark::kMillisecond);

void BM_TopN100(benchmark::State& state) {
  RunPlan(PlanNode::TopN(PlanNode::Scan("big", {"v"}), {{"v", false}}, 100),
          state);
}
BENCHMARK(BM_TopN100)->Unit(benchmark::kMillisecond);

// Matching + insertion cost as a function of recycler-graph size
// (the Fig. 10 quantity, isolated).
void BM_MatchAgainstGraph(benchmark::State& state) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kHistory;
  options.recycler.cache_bytes = 0;
  auto db = Database::OpenOrDie(options);
  for (const auto& name : SharedCatalog()->TableNames()) {
    (void)db->CreateTable(name, SharedCatalog()->GetTable(name));
  }
  Recycler& rec = db->recycler();  // Prepare-only: white-box by design
  // Pre-populate the graph with `range(0)` distinct select chains.
  for (int i = 0; i < state.range(0); ++i) {
    rec.Prepare(PlanNode::Select(
        PlanNode::Scan("big", {"k", "v"}),
        Expr::Eq(Expr::Column("k"), Expr::Literal(int64_t{i}))));
  }
  PlanPtr probe = PlanNode::Select(
      PlanNode::Scan("big", {"k", "v"}),
      Expr::Eq(Expr::Column("k"), Expr::Literal(int64_t{0})));
  for (auto _ : state) {
    auto prepared = rec.Prepare(probe->CloneShallow());
    benchmark::DoNotOptimize(prepared);
  }
}
BENCHMARK(BM_MatchAgainstGraph)->Arg(10)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Zero-copy reuse path: scanning a cached 1M-row result (int64 + string
// columns), copy-per-batch (the seed behaviour) vs. view-per-batch (what
// ScanOp does now). Tracks the recycler's O(1)-per-batch reuse win.
// ---------------------------------------------------------------------------

TablePtr CachedResultTable() {
  static TablePtr table = [] {
    TablePtr t = MakeTable(
        Schema({{"id", TypeId::kInt64}, {"tag", TypeId::kString}}));
    Rng rng(7);
    for (int64_t i = 0; i < 1 << 20; ++i) {
      t->AppendRow({i, "object-" + std::to_string(rng.Uniform(0, 1 << 16))});
    }
    return t;
  }();
  return table;
}

void BM_CopyScanCachedResult(benchmark::State& state) {
  TablePtr t = CachedResultTable();
  int64_t sum = 0;
  for (auto _ : state) {
    Batch out;
    for (int64_t pos = 0; pos < t->num_rows(); pos += kDefaultBatchRows) {
      int64_t count = std::min(kDefaultBatchRows, t->num_rows() - pos);
      out.Clear();
      for (int c = 0; c < t->num_columns(); ++c) {
        ColumnPtr col = MakeColumn(t->schema().field(c).type);
        col->AppendRange(*t->column(c), pos, count);
        out.columns.push_back(std::move(col));
      }
      out.num_rows = count;
      sum += out.columns[0]->Raw<int64_t>()[0];
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_CopyScanCachedResult)->Unit(benchmark::kMillisecond);

void BM_ViewScanCachedResult(benchmark::State& state) {
  TablePtr t = CachedResultTable();
  int64_t sum = 0;
  for (auto _ : state) {
    ScanOp scan(t->schema(), t, {0, 1});
    scan.Open();
    Batch out;
    while (scan.Next(&out)) {
      sum += out.columns[0]->Raw<int64_t>()[0];
    }
    scan.Close();
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * t->num_rows());
}
BENCHMARK(BM_ViewScanCachedResult)->Unit(benchmark::kMillisecond);

void BM_PlanFingerprint(benchmark::State& state) {
  PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Select(
          PlanNode::Scan("big", {"k", "g", "v"}),
          Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(10.0)),
                    Expr::Lt(Expr::Column("k"), Expr::Literal(int64_t{99})))),
      {"g"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan->ParamFingerprint(nullptr));
    benchmark::DoNotOptimize(plan->HashKey());
    benchmark::DoNotOptimize(plan->Signature());
  }
}
BENCHMARK(BM_PlanFingerprint);

}  // namespace
}  // namespace recycledb

BENCHMARK_MAIN();
