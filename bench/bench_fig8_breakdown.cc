// Figure 8 reproduction: per-query-pattern average execution time at high
// stream counts, relative to OFF, for HIST / SPEC / PA.
//
// Expected shape (paper, 256 streams): HIST helps every pattern except Q9
// (its color parameter has ~92 values, so instances rarely repeat twice —
// only SPEC helps); Q1/Q16/Q19 improve further under PA.
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

int main() {
  double sf = tpch::ScaleFromEnv(0.02);
  int streams = static_cast<int>(EnvInt("RECYCLEDB_STREAMS", 256));
  Catalog catalog;
  tpch::Generate(sf, &catalog);

  PrintHeader("Figure 8: per-pattern avg time relative to OFF, " +
              std::to_string(streams) + " streams, SF=" + std::to_string(sf));

  const RecyclerMode modes[] = {RecyclerMode::kOff, RecyclerMode::kHistory,
                                RecyclerMode::kSpeculation,
                                RecyclerMode::kProactive};
  std::map<std::string, double> avg[4];
  for (int m = 0; m < 4; ++m) {
    auto db = MakeDatabase(catalog, modes[m]);
    auto specs = tpch::MakeStreams(streams, sf);
    workload::RunReport report =
        workload::RunStreams(db.get(), std::move(specs), 12);
    for (const auto& [label, stats] : report.by_label) {
      avg[m][label] = stats.AvgMs();
    }
    std::fprintf(stderr, "mode %s done\n", RecyclerModeName(modes[m]));
  }

  std::printf("%6s %10s | %8s %8s %8s\n", "query", "OFF(ms)", "HIST",
              "SPEC", "PA");
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    std::string label = "Q" + std::to_string(q);
    double off = avg[0][label];
    std::printf("%6s %10.2f | %8.2f %8.2f %8.2f\n", label.c_str(), off,
                off > 0 ? avg[1][label] / off : 0,
                off > 0 ? avg[2][label] / off : 0,
                off > 0 ? avg[3][label] / off : 0);
  }
  std::printf(
      "\nPaper reference: all patterns < 1.0 under HIST except Q9 (~1.0);"
      " SPEC helps Q9; PA further improves Q1, Q16, Q19.\n");
  return 0;
}
