// Ablation A: aging factor alpha (Eq. 5) under a phase-shifted workload.
//
// Both phases produce same-sized results (same log2 size group) and the
// cache holds only two of them. Phase 1 builds high importance (h) on
// family X; phase 2 switches to family Y. Without aging (alpha = 1) the
// stale X results keep their high h and the replacement policy refuses Y
// admissions for a long time; with aging the recycler adapts quickly
// (the paper: "Aging enables the benefit metric to adapt to changing
// workloads").
#include "bench_util.h"

using namespace recycledb;
using namespace recycledb::bench;

namespace {

/// Family X groups by b, family Y groups by c; both have 1000 groups so
/// their results land in the same cache size group.
PlanPtr FamilyQuery(bool family_x, int64_t param) {
  return PlanNode::Aggregate(
      PlanNode::Select(
          PlanNode::Scan("f", {"a", "b", "c", "v"}),
          Expr::Eq(Expr::Column("a"), Expr::Literal(param))),
      {family_x ? "b" : "c"}, {{AggFunc::kSum, Expr::Column("v"), "sv"}});
}

}  // namespace

int main() {
  Catalog catalog;
  Schema s({{"a", TypeId::kInt32}, {"b", TypeId::kInt32},
            {"c", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  Rng rng(99);
  for (int i = 0; i < 400000; ++i) {
    t->AppendRow({static_cast<int32_t>(rng.Uniform(0, 7)),
                  static_cast<int32_t>(rng.Uniform(0, 999)),
                  static_cast<int32_t>(rng.Uniform(0, 999)),
                  static_cast<double>(rng.Uniform(0, 10000))});
  }
  if (!catalog.RegisterTable("f", t).ok()) return 1;

  // Measure one result's footprint to size the cache at ~2 results.
  int64_t one_result;
  {
    auto probe = MakeDatabase(catalog, RecyclerMode::kSpeculation);
    probe->Execute(FamilyQuery(true, 0));
    one_result = probe->graph_stats().cached_bytes;
  }

  PrintHeader("Ablation A: aging alpha under a workload phase shift");
  std::printf("(result size ~%lld KB, cache = 2 results)\n",
              (long long)(one_result >> 10));
  std::printf("%8s %12s %12s %14s %14s\n", "alpha", "phase1(ms)",
              "phase2(ms)", "ph2 reuses", "ph2 admits");

  for (double alpha : {1.0, 0.99, 0.9, 0.5}) {
    RecyclerConfig cfg;
    cfg.mode = RecyclerMode::kSpeculation;
    cfg.aging_alpha = alpha;
    cfg.cache_bytes = one_result * 2 + 4096;
    auto db = MakeDatabase(catalog, cfg);
    Rng phase_rng(1);
    Stopwatch sw;
    // Phase 1: hammer two X parameters -> their h climbs to ~30 each.
    for (int i = 0; i < 60; ++i) {
      db->Execute(FamilyQuery(true, phase_rng.Uniform(0, 1)));
    }
    double phase1 = sw.ElapsedMs();
    int64_t reuses_p1 = db->counters().reuses.load();
    int64_t mats_p1 = db->counters().materializations.load();
    // Phase 2: switch to two Y parameters.
    sw.Restart();
    for (int i = 0; i < 60; ++i) {
      db->Execute(FamilyQuery(false, phase_rng.Uniform(0, 1)));
    }
    double phase2 = sw.ElapsedMs();
    std::printf("%8.2f %12.1f %12.1f %14lld %14lld\n", alpha, phase1, phase2,
                (long long)(db->counters().reuses.load() - reuses_p1),
                (long long)(db->counters().materializations.load() - mats_p1));
    std::fflush(stdout);
  }
  std::printf("\nExpected: with alpha < 1 the stale phase-1 results age out,"
              " phase 2 admits + reuses more and runs faster.\n");
  return 0;
}
